// Package dataflow is the order-aware graph IR between the pipeline
// planner and the executor: nodes are command stages, edges are ordered
// line streams, and each edge carries the closure metadata — derived from
// the stage's synthesized combiner class and its command capabilities —
// that licenses the optimizer's split/merge-fusion rewrites ("An
// Order-Aware Dataflow Model for Parallel Unix Pipelines" applied to the
// KumQuat combiner taxonomy).
//
// pipeline.Compile lowers every linear script into a Graph and runs
// Optimize over it; the optimized Program drives the fused executor in
// internal/pipeline, which runs fused regions chunk-parallel end to end
// instead of combining and re-splitting at every stage boundary.
package dataflow

import (
	"kumquat/internal/dsl"
	"kumquat/internal/synth"
	"kumquat/internal/unix"
)

// Stage is the lowering input: one compiled pipeline stage together with
// its planning verdict. It mirrors pipeline.StagePlan field-for-field so
// the pipeline package can lower without a dependency cycle.
type Stage struct {
	// Spec is the stage's command text.
	Spec string
	// Cmd is the parsed command.
	Cmd unix.Command
	// Synth is the stage's synthesis result (nil or Err != nil when no
	// combiner was synthesized).
	Synth *synth.Result
	// Parallel marks stages the planner runs data-parallel with a combiner.
	Parallel bool
	// Sequential marks rerun-only stages the planner keeps serial.
	Sequential bool
	// StreamOutput records whether the command's outputs are
	// newline-terminated streams (Theorem 5's precondition).
	StreamOutput bool
}

// CombinerClass buckets a stage's synthesized combiner by its primary
// candidate — the classes the optimizer's legality rules dispatch on
// (Table 6's combiner taxonomy collapsed to execution-relevant classes).
type CombinerClass int

const (
	// ClassNone marks stages with no synthesized combiner.
	ClassNone CombinerClass = iota
	// ClassConcat marks stages whose primary combiner is plain
	// concatenation in argument order (§3.5 / Theorem 5 material).
	ClassConcat
	// ClassMerge marks stages whose primary combiner is the k-way sorted
	// merge (sort-class stages).
	ClassMerge
	// ClassRerun marks stages whose only combiner re-runs the command.
	ClassRerun
	// ClassOther covers the remaining combiner forms (stitch2, add-style
	// RecOps and StructOps over boundary rows).
	ClassOther
)

// String names the class as the program dump prints it.
func (c CombinerClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassConcat:
		return "concat"
	case ClassMerge:
		return "merge"
	case ClassRerun:
		return "rerun"
	case ClassOther:
		return "other"
	}
	return "invalid"
}

// Closure is an edge's ordering guarantee when the upstream stage's
// combine is skipped and its k chunk outputs are concatenated in chunk
// order instead of combined.
type Closure int

const (
	// ClosureNone: concatenated chunk outputs bear no useful relation to
	// the combined stream; the combiner must run.
	ClosureNone Closure = iota
	// ClosureExact: concatenation of the chunk outputs IS the combined
	// stream (concat combiner over newline-terminated outputs) — the edge
	// may stay split for any consumer (Theorem 5).
	ClosureExact
	// ClosurePerm: concatenation is a line-permutation of the combined
	// stream (merge combiner that drops no lines, over newline-terminated
	// outputs) — the edge may stay split for an order-insensitive
	// consumer.
	ClosurePerm
)

// String names the closure as the program dump prints it.
func (c Closure) String() string {
	switch c {
	case ClosureNone:
		return "none"
	case ClosureExact:
		return "exact"
	case ClosurePerm:
		return "perm"
	}
	return "invalid"
}

// Node is one stage with its derived capabilities.
type Node struct {
	// ID is the node's index in Graph.Nodes (stage order).
	ID int
	// Stage is the lowering input.
	Stage Stage
	// LineMapper reports that the command maps input lines to output
	// lines independently (unix.AsLineMapper) — the fusion substrate.
	LineMapper bool
	// Streamable reports that the command can process its input
	// incrementally (unix.CanStream).
	Streamable bool
	// OrderInsensitive reports that the command's output depends only on
	// the multiset of input lines (unix.IsOrderInsensitive).
	OrderInsensitive bool
	// Class is the synthesized combiner's class.
	Class CombinerClass
}

// Edge is the ordered line stream between two adjacent stages. From is -1
// for the pipeline source; To is -1 for the final sink.
type Edge struct {
	From, To int
	// Closure is the ordering guarantee the producing stage offers when
	// its combine is elided (ClosureNone for the source edge).
	Closure Closure
}

// Graph is the lowered pipeline: a linear chain today, with the node/edge
// representation DAG-shaped pipelines will extend.
type Graph struct {
	// InputFile names the data source ("" = standard input).
	InputFile string
	// Nodes holds one node per stage, in pipeline order.
	Nodes []*Node
	// Edges holds len(Nodes)+1 edges: Edges[i] feeds Nodes[i] (Edges[0]
	// from the source), and the last edge leads to the sink.
	Edges []*Edge
}

// Build lowers a compiled linear pipeline into the graph IR, deriving each
// node's capabilities and each edge's closure metadata.
func Build(inputFile string, stages []Stage) *Graph {
	g := &Graph{InputFile: inputFile}
	for i, st := range stages {
		n := &Node{ID: i, Stage: st}
		_, n.LineMapper = unix.AsLineMapper(st.Cmd)
		n.Streamable = unix.CanStream(st.Cmd)
		n.OrderInsensitive = unix.IsOrderInsensitive(st.Cmd)
		n.Class = combinerClass(st.Synth)
		g.Nodes = append(g.Nodes, n)
		g.Edges = append(g.Edges, &Edge{From: i - 1, To: i})
		if i > 0 {
			g.Edges[i].Closure = closure(g.Nodes[i-1])
		}
	}
	g.Edges = append(g.Edges, &Edge{From: len(stages) - 1, To: -1})
	if n := len(stages); n > 0 {
		g.Edges[n].Closure = closure(g.Nodes[n-1])
	}
	return g
}

// combinerClass buckets a synthesis result by its primary candidate.
func combinerClass(res *synth.Result) CombinerClass {
	if res == nil || res.Err != nil || res.Combiner == nil {
		return ClassNone
	}
	c := res.Combiner
	if c.IsConcat() {
		return ClassConcat
	}
	switch c.Primary().Op.(type) {
	case dsl.Merge:
		return ClassMerge
	case dsl.Rerun:
		return ClassRerun
	default:
		return ClassOther
	}
}

// closure derives the outgoing edge's guarantee from the producing node.
// Exact closure is Theorem 5's precondition: a concat combiner (in
// argument order) over newline-terminated chunk outputs, so concatenation
// reproduces the combined stream byte for byte. Permutation closure
// additionally admits merge-class producers — each chunk output is sorted,
// and concatenating them permutes the lines of the merged stream — but
// only when the merge drops nothing: sort -u dedups across chunk
// boundaries during the merge, so skipping it would leave duplicates.
func closure(n *Node) Closure {
	if !n.Stage.Parallel || !n.Stage.StreamOutput {
		return ClosureNone
	}
	switch n.Class {
	case ClassConcat:
		return ClosureExact
	case ClassMerge:
		if sc, ok := n.Stage.Cmd.(*unix.SortCmd); ok && !sc.Unique {
			return ClosurePerm
		}
	}
	return ClosureNone
}
