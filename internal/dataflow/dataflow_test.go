// Tests for the dataflow plane live in an external test package so they
// can drive the real lowering path — pipeline.Compile produces the graph
// and program under test — without an import cycle (pipeline imports
// dataflow).
package dataflow_test

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"kumquat/internal/dataflow"
	"kumquat/internal/pipeline"
	"kumquat/internal/synth"
	"kumquat/internal/unix"
)

func newSynth() *synth.Engine {
	return synth.New(unix.DefaultEnv(), synth.Options{Seed: 1})
}

// compile parses and compiles a one-pipeline script through a shared
// engine, returning the plan with its lowered graph and program.
func compile(t *testing.T, eng *synth.Engine, script string) *pipeline.Plan {
	t.Helper()
	s, err := pipeline.ParseScript(script, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pipeline.Compile(s.Pipelines[0], eng)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestCombinerClassTaxonomy pins the class the lowering derives for a
// representative command of every combiner class in the paper's Table 6
// taxonomy, plus the capability bits the optimizer's legality rules
// dispatch on.
func TestCombinerClassTaxonomy(t *testing.T) {
	eng := newSynth()
	cases := []struct {
		spec       string
		class      dataflow.CombinerClass
		lineMapper bool
		orderIns   bool
	}{
		// concat: line mappers whose chunk outputs concatenate exactly.
		{"tr A-Z a-z", dataflow.ClassConcat, true, false},
		{"grep a", dataflow.ClassConcat, true, false},
		{"cut -c 1-4", dataflow.ClassConcat, true, false},
		{"sed 's/a/X/'", dataflow.ClassConcat, true, false},
		// merge: sort-class stages combined by the k-way sorted merge.
		{"sort", dataflow.ClassMerge, false, true},
		{"sort -rn", dataflow.ClassMerge, false, true},
		{"sort -u", dataflow.ClassMerge, false, true},
		// keyed sort without -u: the last-resort whole-line comparison
		// breaks key ties deterministically, so input order cannot show.
		{"sort -k1n", dataflow.ClassMerge, false, true},
		// other: stitch-class boundary merges and add-class counters.
		{"uniq -c", dataflow.ClassOther, false, false},
		{"wc -l", dataflow.ClassOther, false, true},
		{"grep -c e", dataflow.ClassOther, false, true},
	}
	for _, tc := range cases {
		plan := compile(t, eng, tc.spec+"\n")
		n := plan.Graph.Nodes[0]
		if n.Class != tc.class {
			t.Errorf("%q: class = %s, want %s", tc.spec, n.Class, tc.class)
		}
		if n.LineMapper != tc.lineMapper {
			t.Errorf("%q: LineMapper = %v, want %v", tc.spec, n.LineMapper, tc.lineMapper)
		}
		if n.OrderInsensitive != tc.orderIns {
			t.Errorf("%q: OrderInsensitive = %v, want %v", tc.spec, n.OrderInsensitive, tc.orderIns)
		}
	}
	// rerun: stages whose only combiner re-runs the command (kept serial
	// by the planner). tr -cs's word-splitting is §2's example.
	plan := compile(t, eng, `tr -cs A-Za-z '\n'`+"\n")
	n := plan.Graph.Nodes[0]
	if n.Class != dataflow.ClassRerun {
		t.Errorf("tr -cs: class = %s, want rerun", n.Class)
	}
	if !n.Stage.Sequential {
		t.Error("tr -cs: planner should keep a rerun-only stage sequential")
	}
}

// TestEdgeClosures pins the closure metadata the lowering attaches to
// edges: exact for concat-class producers, perm for sort-class producers
// that drop no lines, none for sort -u (the merge dedups across chunk
// boundaries, so skipping it leaves duplicates).
func TestEdgeClosures(t *testing.T) {
	eng := newSynth()
	cases := []struct {
		script  string
		edge    int // edge index = consumer node index
		closure dataflow.Closure
	}{
		{"tr A-Z a-z | wc -l\n", 1, dataflow.ClosureExact},
		{"sort | wc -l\n", 1, dataflow.ClosurePerm},
		{"sort -u | wc -l\n", 1, dataflow.ClosureNone},
		{"uniq -c | wc -l\n", 1, dataflow.ClosureNone},
	}
	for _, tc := range cases {
		plan := compile(t, eng, tc.script)
		if got := plan.Graph.Edges[tc.edge].Closure; got != tc.closure {
			t.Errorf("%q edge %d: closure = %s, want %s", tc.script, tc.edge, got, tc.closure)
		}
	}
}

// propertyCorpora is the corpus sweep of the byte-identity property: the
// shapes that break stream code — no trailing newline, empty input, and
// fewer lines than chunks (empty-chunk territory) included.
var propertyCorpora = []struct {
	name   string
	corpus string
}{
	{"words", "pear apple\nfig Quince\nloquat\nkumquat medlar\nplum pear\nthe fig\n"},
	{"no-trailing-newline", "pear apple\nfig Quince\nloquat\nkumquat"},
	{"empty", ""},
	{"single-line", "only line here\n"},
	{"two-lines", "beta\nalpha\n"},
	{"duplicates", "apple\napple\npear\napple\npear\npear\napple\n"},
	{"numbers", "10\n2\n-3\n2\n700\n0\n10\n33\n"},
	{"blanks", "pear\n\n\napple\n\nfig\n"},
}

// propertyPipelines covers every combiner class and provokes each of the
// optimizer's rewrites at least once.
var propertyPipelines = []string{
	// fuse-streamers: runs of concat-class line mappers.
	"cat in.txt | tr A-Z a-z | grep a | cut -c 1-4\n",
	"cat in.txt | rev | tr a-z A-Z | sed 's/A/x/'\n",
	// elide-combine: sort-class into order-insensitive reducers.
	"cat in.txt | sort | wc -l\n",
	"cat in.txt | sort -n | grep -c e\n",
	// push-sort-merge: sort-class into order-sensitive streamers.
	"cat in.txt | sort | sed 's/^a/X/'\n",
	"cat in.txt | sort -r | grep a\n",
	// mixed classes: merge, stitch (uniq -c), merge again.
	"cat in.txt | tr A-Z a-z | sort | uniq -c | sort -rn\n",
	// sort -u (no perm closure) into a streamer; add-class tail.
	"cat in.txt | sort -u | cut -c 1-3 | wc -l\n",
	// rerun-only stage in the middle.
	"cat in.txt | grep a | head -n 3 | tr a-z A-Z\n",
}

// TestFusedByteIdenticalToStaged is the plane's core property: for every
// pipeline × corpus × k ∈ {1, 4, GOMAXPROCS}, the fused graph-walking
// execution, the unfused stage-at-a-time execution and the serial oracle
// produce byte-identical output.
func TestFusedByteIdenticalToStaged(t *testing.T) {
	eng := newSynth()
	ks := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, script := range propertyPipelines {
		eng.Env.FS.Register("in.txt", propertyCorpora[0].corpus)
		plan := compile(t, eng, script)
		if plan.Program == nil {
			t.Fatalf("%q: no optimized program", script)
		}
		for _, pc := range propertyCorpora {
			eng.Env.FS.Register("in.txt", pc.corpus)
			var oracle strings.Builder
			if _, err := plan.Execute(context.Background(), eng.Env, nil, &oracle, pipeline.ModeSerial, 1); err != nil {
				t.Fatalf("%q %s serial: %v", script, pc.name, err)
			}
			for _, k := range ks {
				for _, fuse := range []bool{true, false} {
					var out strings.Builder
					var info pipeline.RunInfo
					_, err := plan.Execute(context.Background(), eng.Env, nil, &out,
						pipeline.ModeOptimized, k,
						pipeline.WithFuse(fuse), pipeline.WithRunInfo(&info))
					if err != nil {
						t.Errorf("%q %s k=%d fuse=%v: %v", script, pc.name, k, fuse, err)
						continue
					}
					if out.String() != oracle.String() {
						t.Errorf("%q %s k=%d fuse=%v diverged:\n got %q\nwant %q",
							script, pc.name, k, fuse, out.String(), oracle.String())
					}
					if !fuse && info.Fused {
						t.Errorf("%q %s k=%d: fuse=off run reported fused execution", script, pc.name, k)
					}
				}
			}
		}
	}
}

// TestRunInfoReportsRules: a fused run must report the program's regions
// and the rewrites that shaped them.
func TestRunInfoReportsRules(t *testing.T) {
	eng := newSynth()
	eng.Env.FS.Register("in.txt", "pear apple\nfig quince\nloquat\n")
	plan := compile(t, eng, "cat in.txt | tr A-Z a-z | grep a | cut -c 1-4\n")
	if got := plan.Program.Fired[dataflow.RuleFuseStreamers]; got != 2 {
		t.Fatalf("fuse-streamers fired %d times at compile, want 2 (3-stage run)", got)
	}
	var out strings.Builder
	var info pipeline.RunInfo
	if _, err := plan.Execute(context.Background(), eng.Env, nil, &out,
		pipeline.ModeOptimized, 4, pipeline.WithRunInfo(&info)); err != nil {
		t.Fatal(err)
	}
	if !info.Fused {
		t.Fatal("fused executor did not run")
	}
	if info.Rewrites["fuse-streamers"] != 2 {
		t.Errorf("run info rewrites = %v, want fuse-streamers=2", info.Rewrites)
	}
	if len(info.Regions) != 1 || !info.Regions[0].Fused || len(info.Regions[0].Stages) != 3 {
		t.Errorf("regions = %+v, want one fused region of 3 stages", info.Regions)
	}
}

// TestOptimizeAblation: disabling a rule must suppress exactly that
// rule's rewrites while the program stays executable and correct.
func TestOptimizeAblation(t *testing.T) {
	eng := newSynth()
	eng.Env.FS.Register("in.txt", "pear\napple\nfig\nquince\nloquat\n")
	plan := compile(t, eng, "cat in.txt | tr A-Z a-z | grep a | sort | wc -l\n")
	base := plan.Program.Fired
	if base[dataflow.RuleFuseStreamers] == 0 || base[dataflow.RuleElideCombine] == 0 {
		t.Fatalf("baseline program missing expected rewrites: %v", base)
	}
	plan.Relower(dataflow.Options{Disable: map[dataflow.Rule]bool{
		dataflow.RuleFuseStreamers: true,
	}})
	if got := plan.Program.Fired[dataflow.RuleFuseStreamers]; got != 0 {
		t.Errorf("fuse-streamers disabled but fired %d times", got)
	}
	if got := plan.Program.Fired[dataflow.RuleElideCombine]; got == 0 {
		t.Error("elide-combine should survive a fuse-streamers ablation")
	}
	var oracle, out strings.Builder
	if _, err := plan.Execute(context.Background(), eng.Env, nil, &oracle, pipeline.ModeSerial, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Execute(context.Background(), eng.Env, nil, &out, pipeline.ModeOptimized, 4); err != nil {
		t.Fatal(err)
	}
	if out.String() != oracle.String() {
		t.Errorf("ablated program diverged: got %q want %q", out.String(), oracle.String())
	}
	plan.Relower(dataflow.Options{})
	if plan.Program.Fired[dataflow.RuleFuseStreamers] != base[dataflow.RuleFuseStreamers] {
		t.Error("re-lowering with defaults did not restore the baseline program")
	}
}

// TestFusedMapperComposes: the composed per-line pass must equal running
// the member mappers stage by stage, including on dropped lines (grep)
// and non-terminated tails.
func TestFusedMapperComposes(t *testing.T) {
	env := unix.DefaultEnv()
	specs := []string{"tr A-Z a-z", "grep a", "cut -c 1-4"}
	var mappers []unix.LineMapper
	cmds := make([]unix.Command, len(specs))
	for i, spec := range specs {
		cmd, err := unix.Parse(spec, env)
		if err != nil {
			t.Fatal(err)
		}
		cmds[i] = cmd
		lm, ok := unix.AsLineMapper(cmd)
		if !ok {
			t.Fatalf("%q is not a line mapper", spec)
		}
		mappers = append(mappers, lm)
	}
	fm := dataflow.NewFusedMapper(specs, mappers)
	for _, in := range []string{
		"", "Pear Apple\nFIG\nquince\n", "no trailing newline",
		"LOQUAT\nApricot\n\nkumquat", "ALL CAPS DROPPED\nBANANA\n",
	} {
		want := in
		for _, cmd := range cmds {
			var err error
			if want, err = cmd.Run(want); err != nil {
				t.Fatal(err)
			}
		}
		got, err := fm.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("fused(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestFusedRunAllocations pins the fused pass's allocation behaviour:
// with every member stage on the unix.LineEmitter fast path, one Run
// over a chunk allocates O(1) — the composed sink, per-stage scratch,
// and output builder growth — not O(lines). A per-line regression (a
// MapLine slice or result string sneaking back into the hot loop) blows
// the bound by orders of magnitude.
func TestFusedRunAllocations(t *testing.T) {
	env := unix.DefaultEnv()
	specs := []string{"tr a-z A-Z", "grep A", "cut -c 1-8"}
	var mappers []unix.LineMapper
	for _, spec := range specs {
		cmd, err := unix.Parse(spec, env)
		if err != nil {
			t.Fatal(err)
		}
		lm, ok := unix.AsLineMapper(cmd)
		if !ok {
			t.Fatalf("%q is not a line mapper", spec)
		}
		mappers = append(mappers, lm)
	}
	fm := dataflow.NewFusedMapper(specs, mappers)
	const lines = 2000
	var b strings.Builder
	for i := 0; i < lines; i++ {
		b.WriteString("a quince and a loquat walk into a bar\n")
	}
	in := b.String()
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := fm.Run(in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 100 {
		t.Errorf("fused Run allocated %.0f times for %d lines; want O(1), not O(lines)", allocs, lines)
	}
}
