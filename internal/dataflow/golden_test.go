package dataflow_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden program dumps")

// goldenPipelines are the example-suite scripts whose optimized programs
// the goldens pin: the quickstart and wordfreq pipelines, two unix50
// scripts (a long streamer chain and an order-insensitive reduction), and
// an analytics query. A capability probe drifting or a rule firing where
// it should not shows up as a readable diff in the dump.
var goldenPipelines = []struct {
	name   string
	script string
}{
	{"quickstart", "cat data.txt | sort | uniq -c | sort -rn\n"},
	{"wordfreq", `cat in/book.txt | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn` + "\n"},
	{"unix50_chess", `cat in/chess.txt | tr ' ' '\n' | grep 'x' | grep '\.' | cut -d '.' -f 2 | grep '[KQRBN]' | cut -c 1-1 | sort | uniq -c | sort -rn` + "\n"},
	{"unix50_count", "cat in/history.tsv | cut -f 1 | grep 'AT&T' | wc -l\n"},
	{"analytics_days", `cat in/mts.csv | sed 's/T..:..:..//' | cut -d ',' -f 1,3 | sort -u | cut -d ',' -f 1 | sort | uniq -c` + "\n"},
	{"push_sort_merge", "cat in.txt | sort | sed 's/^/> /'\n"},
}

// TestGoldenProgramDumps compiles each example pipeline and compares the
// optimizer's program dump — nodes, edge closures, regions, exits and
// fired rules — against the checked-in golden. Run with -update to
// regenerate after an intentional optimizer change.
func TestGoldenProgramDumps(t *testing.T) {
	eng := newSynth()
	for _, gp := range goldenPipelines {
		plan := compile(t, eng, gp.script)
		got := plan.Program.Dump()
		path := filepath.Join("testdata", gp.name+".golden")
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to create)", gp.name, err)
		}
		if got != string(want) {
			t.Errorf("%s: program dump drifted from golden\n got:\n%s\nwant:\n%s", gp.name, got, want)
		}
	}
}
