// Command kumquat synthesizes combiners for Unix commands and compiles
// shell pipelines into data-parallel pipelines, reproducing the KumQuat
// system (PPoPP 2022).
//
// Usage:
//
//	kumquat synth 'uniq -c'
//	    Synthesize and print the combiner for one command.
//
//	kumquat plan "cat in.txt | tr -cs A-Za-z '\n' | sort | uniq -c"
//	    Show the parallelization plan for a pipeline.
//
//	kumquat run -k 8 -input FILE "cat FILE | sort | uniq -c"
//	    Execute a pipeline with k-way data parallelism (reads the named
//	    input file from the host file system into the in-memory
//	    environment first). Pipelines without a `cat FILE` source stream
//	    the process's standard input; output streams to standard output.
//	    -mode selects the execution configuration, -fuse=off disables the
//	    graph-walking fused executor (the stage-at-a-time ablation), and
//	    -report prints per-stage wall times, byte counts, chunk counts and
//	    the fired optimizer rewrites to stderr, and -trace FILE writes a
//	    Chrome trace-event JSON timeline of the run (synthesis, planning,
//	    stages, chunk batches, combines and fused regions) for
//	    chrome://tracing or Perfetto.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"kumquat"
	"kumquat/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "synth":
		err = runSynth(os.Args[2:])
	case "plan":
		err = runPlan(os.Args[2:])
	case "run":
		err = runRun(os.Args[2:])
	case "combine":
		err = runCombine(os.Args[2:])
	case "version", "-version", "--version":
		runVersion()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kumquat:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  kumquat synth [-synth-workers N] [-synth-cache DIR] '<command>'
  kumquat plan [-synth-workers N] [-synth-cache DIR] '<pipeline>'
  kumquat run [-k N] [-mode MODE] [-fuse on|off] [-combine-workers N] [-report] [-trace FILE] [-synth-workers N] [-synth-cache DIR] [-input FILE]... '<pipeline>'
  kumquat combine -g '<combiner>' -cmd '<command>' FILE1 FILE2
  kumquat version`)
}

// runVersion prints the build surface: module version, toolchain, and
// the effective parallelism/cache defaults.
func runVersion() {
	kumquat.Info().Fprint(os.Stdout, "kumquat")
}

// synthFlags registers the synthesis-engine flags shared by the synth,
// plan and run subcommands; the returned closure folds them into opts.
func synthFlags(fs *flag.FlagSet) func(kumquat.Options) kumquat.Options {
	workers := fs.Int("synth-workers", 0,
		"synthesis worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	cacheDir := fs.String("synth-cache", "",
		"directory for the on-disk combiner cache (empty = memory only)")
	return func(o kumquat.Options) kumquat.Options {
		o.Workers = *workers
		o.CacheDir = *cacheDir
		return o
	}
}

// runCombine applies a DSL combiner to two partial-output files — handy for
// inspecting synthesized combiners by hand.
func runCombine(args []string) error {
	fs := flag.NewFlagSet("combine", flag.ExitOnError)
	g := fs.String("g", "", "combiner in DSL form, e.g. \"(stitch2 ' ' add first a b)\"")
	cmdSpec := fs.String("cmd", "cat", "command binding rerun/merge semantics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *g == "" || fs.NArg() != 2 {
		return fmt.Errorf("combine needs -g and two file operands")
	}
	y1, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	y2, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	sys := kumquat.New(nil)
	out, err := sys.Combine(*g, *cmdSpec, string(y1), string(y2))
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func runSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "synthesis random seed")
	withSynth := synthFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("synth needs exactly one command argument")
	}
	sys := kumquat.NewWithOptions(nil, withSynth(kumquat.Options{Seed: *seed}))
	start := time.Now()
	res, err := sys.Synthesize(fs.Arg(0))
	if res == nil {
		return err
	}
	fmt.Printf("command:      %s\n", res.Spec)
	fmt.Printf("search space: %d (= %d RecOp + %d StructOp + %d RunOp)\n",
		res.Space.Total(), res.Space.Rec, res.Space.Struct, res.Space.Run)
	fmt.Printf("rounds:       %d (%d observations, %v)\n",
		res.Rounds, res.Observations, time.Since(start).Round(time.Millisecond))
	if res.Err != nil {
		fmt.Printf("unsupported:  %v\n", res.Err)
		return nil
	}
	fmt.Printf("plausible:    %s\n", strings.Join(res.DisplayPlausible(), ", "))
	fmt.Printf("combiner:     %s\n", res.Combiner)
	return nil
}

func runPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	withSynth := synthFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("plan needs exactly one pipeline argument")
	}
	sys := kumquat.NewWithOptions(nil, withSynth(kumquat.Options{Seed: 1}))
	plan, err := sys.Parallelize(fs.Arg(0) + "\n")
	if err != nil {
		return err
	}
	par, total, elim := plan.Counts()
	fmt.Printf("parallelized %d/%d stages, %d combiners eliminated\n\n", par, total, elim)
	for _, st := range plan.Stages() {
		mode := "serial (no combiner)"
		switch {
		case st.Eliminated:
			mode = "parallel, combiner eliminated (Theorem 5)"
		case st.Parallel:
			mode = "parallel"
		case st.Sequential:
			mode = "sequential (rerun-only combiner)"
		}
		fmt.Printf("  %-36s %s\n", st.Spec, mode)
		if st.Combiner != "" {
			fmt.Printf("  %-36s   combiner: %s\n", "", st.Combiner)
		}
	}
	return nil
}

func runRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	k := fs.Int("k", 8, "parallelism degree")
	mode := fs.String("mode", "optimized", "execution mode: optimized, unoptimized, serial, pipelined")
	fuse := fs.String("fuse", "on", "graph-walking fused executor for optimized mode: on, off")
	combineWorkers := fs.Int("combine-workers", 0,
		"combine-plane tree-reduction workers (0 = match the chunk pool)")
	report := fs.Bool("report", false, "print the per-stage execution report to stderr")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON file for this run (open in chrome://tracing or Perfetto)")
	withSynth := synthFlags(fs)
	var inputs multiFlag
	fs.Var(&inputs, "input", "host file to load into the environment (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("run needs exactly one pipeline argument")
	}
	m, err := kumquat.ParseMode(*mode)
	if err != nil {
		return err
	}
	var fuseOn bool
	switch *fuse {
	case "on":
		fuseOn = true
	case "off":
		fuseOn = false
	default:
		return fmt.Errorf("run: -fuse must be on or off, got %q", *fuse)
	}
	env := kumquat.NewEnv()
	// Host files are memory-mapped (falling back to a buffered read for
	// pipes and platforms without mmap), so the environment holds
	// zero-copy views and chunking never duplicates the corpus.
	defer env.Close()
	for _, path := range inputs {
		if err := env.RegisterFile(path, path); err != nil {
			return err
		}
	}
	sys := kumquat.NewWithOptions(env, withSynth(kumquat.Options{Seed: 1}))
	// First interrupt cancels the run; stop() re-arms the default SIGINT
	// disposition as soon as the context fires, so a second Ctrl-C kills
	// the process even if a stage is blocked reading a silent stdin.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)
	// With -trace, planning and execution run under a root span; every
	// layer below (plan, synth, stages, chunk batches, combines, fused
	// regions) attaches children via the context, and the finished trace
	// exports as Chrome trace-event JSON.
	var rootSpan *obs.Span
	if *traceOut != "" {
		trc := obs.NewTracer(1, "kumquat")
		// The library's Execute records its own "run" span; the CLI root
		// wraps it together with planning under one tree.
		ctx, rootSpan = trc.StartTrace(ctx, "cli")
	}
	plan, err := sys.ParallelizeContext(ctx, fs.Arg(0)+"\n")
	if err != nil {
		return err
	}
	rep, err := plan.Execute(ctx,
		kumquat.WithParallelism(*k),
		kumquat.WithMode(m),
		kumquat.WithFuse(fuseOn),
		kumquat.WithCombineWorkers(*combineWorkers),
		kumquat.WithStdin(os.Stdin),
		kumquat.WithOutput(os.Stdout))
	if errors.Is(err, context.Canceled) {
		// The user interrupted the run; exit with the conventional
		// SIGINT status instead of reporting an internal error.
		os.Exit(130)
	}
	if err != nil {
		return err
	}
	if rootSpan != nil {
		rootSpan.End()
		td, ok := rootSpan.Tracer().Trace(rootSpan.SpanContext().TraceID)
		if !ok {
			return fmt.Errorf("run: trace %s not recorded", rootSpan.SpanContext().TraceID)
		}
		data, merr := td.ChromeTrace()
		if merr != nil {
			return fmt.Errorf("run: encoding trace: %w", merr)
		}
		if werr := os.WriteFile(*traceOut, data, 0o644); werr != nil {
			return fmt.Errorf("run: writing trace: %w", werr)
		}
		fmt.Fprintf(os.Stderr, "kumquat: wrote %d spans to %s (open in chrome://tracing)\n",
			len(td.Spans), *traceOut)
	}
	if *report {
		writeReport(rep)
	}
	return nil
}

func writeReport(rep *kumquat.RunReport) {
	w := os.Stderr
	fmt.Fprintf(w, "mode=%s k=%d fused=%v wall=%v in=%dB out=%dB\n",
		rep.Mode, rep.Parallelism, rep.Fused, rep.Wall.Round(time.Microsecond), rep.BytesIn, rep.BytesOut)
	fmt.Fprintf(w, "synth cache: %d hits, %d disk hits, %d misses\n",
		rep.SynthCache.Hits, rep.SynthCache.DiskHits, rep.SynthCache.Misses)
	if rep.Fused {
		rules := make([]string, 0, len(rep.Rewrites))
		for r := range rep.Rewrites {
			rules = append(rules, r)
		}
		sort.Strings(rules)
		fired := make([]string, len(rules))
		for i, r := range rules {
			fired[i] = fmt.Sprintf("%s=%d", r, rep.Rewrites[r])
		}
		fmt.Fprintf(w, "rewrites: %s\n", strings.Join(fired, " "))
		for i, rg := range rep.Regions {
			kind := "single"
			if rg.Fused {
				kind = "fused"
			}
			detail := ""
			if len(rg.Rules) > 0 {
				detail = " rules=" + strings.Join(rg.Rules, ",")
			}
			fmt.Fprintf(w, "  region %d: %s stages=%v exit=%s%s\n", i, kind, rg.Stages, rg.Exit, detail)
		}
	}
	for _, st := range rep.Stages {
		how := "buffered"
		switch {
		case st.Streamed:
			how = "streamed"
		case st.Chunks > 1:
			how = fmt.Sprintf("%d chunks", st.Chunks)
		}
		combine := ""
		if st.CombineWall > 0 {
			combine = fmt.Sprintf(" combine=%v", st.CombineWall.Round(time.Microsecond))
		}
		fmt.Fprintf(w, "  %-36s %-10s wall=%-10v in=%-10d out=%d%s\n",
			st.Spec, how, st.Wall.Round(time.Microsecond), st.BytesIn, st.BytesOut, combine)
	}
}

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
