// Command kqbench regenerates the paper's evaluation tables (Tables 1 and
// 3–10) over the reconstructed 70-script benchmark catalog with synthetic
// inputs.
//
// Usage:
//
//	kqbench -table all            # everything (default)
//	kqbench -table 3              # planning counts only (fast)
//	kqbench -table 10 -scale 500  # synthesis results, smaller inputs
//	kqbench -bench-exec OUT.json  # buffered-vs-streaming executor smoke
//	                              # run on the wordfreq pipeline
//	kqbench -bench-synth OUT.json # sequential-vs-parallel synthesis and
//	                              # cold-vs-warm combiner cache comparison
//	kqbench -bench-combine OUT.json
//	                              # fold-vs-tree combine and scan-vs-heap
//	                              # k-way merge sweep over k
//	kqbench -bench-serve OUT.json # loopback kumquatd serving comparison:
//	                              # cold-vs-warm request latency and
//	                              # 1-vs-N concurrent-client throughput
//	kqbench -bench-fuse OUT.json  # fused-vs-unfused executor comparison
//	                              # (wall and allocations at k in {4,32})
//	kqbench -bench-io OUT.json    # zero-copy data-plane measurement:
//	                              # mmap ingest, per-stage streaming
//	                              # throughput and allocations/line
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"time"

	"kumquat/internal/bench"
	"kumquat/internal/bench/serve"
)

func main() {
	table := flag.String("table", "all", "table to print: 1,3,4,5,6,7,8,9,10,summary,all")
	scale := flag.Int("scale", 4000, "approximate input lines per script")
	benchExec := flag.String("bench-exec", "", "write a buffered-vs-streaming executor comparison (wordfreq pipeline) to this JSON file and exit")
	benchSynth := flag.String("bench-synth", "", "write a sequential-vs-parallel synthesis and cold-vs-warm cache comparison to this JSON file and exit")
	benchCombine := flag.String("bench-combine", "", "write a fold-vs-tree combine and scan-vs-heap merge comparison to this JSON file and exit")
	benchServe := flag.String("bench-serve", "", "write a loopback-daemon serving comparison (cold-vs-warm latency, concurrent-client throughput) to this JSON file and exit")
	benchFuse := flag.String("bench-fuse", "", "write a fused-vs-unfused optimized-executor comparison (streamer-chain pipeline) to this JSON file and exit")
	benchIO := flag.String("bench-io", "", "write a zero-copy data-plane measurement (mmap ingest, per-stage streaming throughput and allocations/line) to this JSON file and exit")
	combineWorkers := flag.Int("combine-workers", 0, "combine-plane workers for -bench-combine (0 = GOMAXPROCS)")
	k := flag.Int("k", 8, "parallelism degree for -bench-exec")
	synthWorkers := flag.Int("synth-workers", 0, "synthesis worker pool for -bench-synth (0 = GOMAXPROCS)")
	flag.Parse()

	// One interrupt-bound root context feeds every benchmark run, so ^C
	// aborts mid-measurement instead of hanging until the sweep finishes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *benchExec != "" {
		if err := writeBenchExec(ctx, *benchExec, *scale, *k); err != nil {
			fatal(err)
		}
		return
	}
	if *benchSynth != "" {
		if err := writeBenchSynth(ctx, *benchSynth, *synthWorkers); err != nil {
			fatal(err)
		}
		return
	}
	if *benchCombine != "" {
		if err := writeBenchCombine(ctx, *benchCombine, *scale, *combineWorkers); err != nil {
			fatal(err)
		}
		return
	}
	if *benchServe != "" {
		if err := writeBenchServe(ctx, *benchServe, *synthWorkers); err != nil {
			fatal(err)
		}
		return
	}
	if *benchFuse != "" {
		if err := writeBenchFuse(ctx, *benchFuse, *scale); err != nil {
			fatal(err)
		}
		return
	}
	if *benchIO != "" {
		if err := writeBenchIO(ctx, *benchIO, *scale); err != nil {
			fatal(err)
		}
		return
	}

	ks := []int{1, 2, 4, 8, 16}
	h := bench.NewHarness(*scale, ks)
	w := os.Stdout

	fmt.Fprintf(w, "kqbench: %d CPUs, scale=%d lines, k=%v\n\n", runtime.NumCPU(), *scale, ks)

	needRuns := map[string]bool{"1": true, "4": true, "5": true, "6": true, "7": true, "all": true}
	needPlans := map[string]bool{"3": true}
	needSynth := map[string]bool{"8": true, "9": true, "10": true, "summary": true}

	var results []*bench.ScriptResult
	var err error
	switch {
	case needRuns[*table]:
		start := time.Now()
		results, err = h.RunAll(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "ran %d scripts in %v\n\n", len(results), time.Since(start).Round(time.Millisecond))
	case needPlans[*table]:
		results, err = h.PlanOnly()
		if err != nil {
			fatal(err)
		}
	}

	printTable := func(name string) {
		switch name {
		case "1":
			bench.WriteTable1(w, results, ks[len(ks)-1])
		case "3":
			bench.WriteTable3(w, results)
		case "4":
			bench.WriteTable4(w, results, ks[len(ks)-1])
		case "5":
			bench.WriteSweep(w, results, ks, false)
		case "6":
			bench.WriteSweep(w, results, ks, true)
		case "7":
			bench.WriteTable7(w, results, ks, medianU1(results))
		case "8":
			bench.WriteTable8(w, h.Synthesizer())
		case "9":
			bench.WriteTable9(w, h.Synthesizer())
		case "10":
			bench.WriteTable10(w, h.Synthesizer())
		case "summary":
			writeSummary(h)
		}
		fmt.Fprintln(w)
	}

	if *table == "all" {
		for _, name := range []string{"3", "1", "4", "5", "6", "7", "8", "9", "10", "summary"} {
			printTable(name)
		}
		return
	}
	_ = needSynth
	printTable(*table)
}

func medianU1(results []*bench.ScriptResult) time.Duration {
	if len(results) == 0 {
		return 0
	}
	ds := make([]time.Duration, 0, len(results))
	for _, r := range results {
		ds = append(ds, r.U[1])
	}
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds[len(ds)/2]
}

func writeSummary(h *bench.Harness) {
	syn := h.Synthesizer()
	supported, unsupported := 0, 0
	var minD, maxD, sum time.Duration
	var durations []time.Duration
	for _, spec := range bench.UniqueCommands() {
		res, _ := syn.SynthesizeSpec(spec)
		if res == nil {
			continue
		}
		if res.Err != nil {
			unsupported++
			continue
		}
		supported++
		d := res.Duration
		durations = append(durations, d)
		sum += d
		if minD == 0 || d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	for i := 1; i < len(durations); i++ {
		for j := i; j > 0 && durations[j] < durations[j-1]; j-- {
			durations[j], durations[j-1] = durations[j-1], durations[j]
		}
	}
	var med time.Duration
	if len(durations) > 0 {
		med = durations[len(durations)/2]
	}
	fmt.Printf("Synthesis summary: %d commands with combiners, %d unsupported\n", supported, unsupported)
	fmt.Printf("  (paper: 113 of 121 stream-processing commands, 8 unsupported)\n")
	fmt.Printf("Synthesis times: min %v, median %v, max %v\n",
		minD.Round(time.Millisecond), med.Round(time.Millisecond), maxD.Round(time.Millisecond))
	fmt.Printf("  (paper: 39 s – 331 s, median 60 s, on real process execution)\n")
}

// writeBenchExec runs the wordfreq executor comparison and writes the
// JSON report, echoing a one-line summary per mode to stdout.
func writeBenchExec(ctx context.Context, path string, scale, k int) error {
	cmp, err := bench.CompareExecutors(ctx, scale, k)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(cmp, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, m := range cmp.Modes {
		fmt.Printf("%-22s k=%-3d %8.1f ms  %d bytes\n", m.Name, m.K, m.WallMS, m.BytesOut)
	}
	fmt.Printf("agree=%v -> %s\n", cmp.Agree, path)
	if !cmp.Agree {
		return fmt.Errorf("executor outputs disagree")
	}
	return nil
}

// writeBenchSynth runs the synthesis engine comparison and writes the
// JSON report, echoing one line per measurement to stdout.
func writeBenchSynth(ctx context.Context, path string, workers int) error {
	cmp, err := bench.CompareSynth(ctx, workers)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(cmp, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, s := range cmp.Specs {
		fmt.Printf("%-22s space=%-7d seq=%8.1f ms  par=%8.1f ms  speedup=%.2fx\n",
			s.Spec, s.Space, s.SeqMS, s.ParMS, s.Speedup)
	}
	for _, ex := range cmp.Examples {
		fmt.Printf("%-22s stages=%-2d cold=%8.1f ms  warm=%8.3f ms  hits=%d misses=%d\n",
			ex.Name, ex.Stages, ex.ColdMS, ex.WarmMS, ex.Hits, ex.Misses)
	}
	fmt.Printf("workers=%d cpus=%d agree=%v -> %s\n", cmp.Workers, cmp.CPUs, cmp.Agree, path)
	if !cmp.Agree {
		return fmt.Errorf("parallel synthesis disagrees with sequential")
	}
	return nil
}

// writeBenchCombine runs the combine-plane comparison and writes the
// JSON report, echoing one line per measurement to stdout.
func writeBenchCombine(ctx context.Context, path string, scale, workers int) error {
	cmp, err := bench.CompareCombine(ctx, scale, workers)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(cmp, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, c := range cmp.FoldVsTree {
		fmt.Printf("%-10s k=%-4d lines=%-7d fold=%8.3f ms  tree=%8.3f ms  speedup=%.2fx\n",
			c.Spec, c.K, c.Lines, c.FoldMS, c.TreeMS, c.Speedup)
	}
	for _, m := range cmp.ScanVsHeap {
		fmt.Printf("%-10s k=%-4d lines=%-7d scan=%8.3f ms  heap=%8.3f ms  speedup=%.2fx\n",
			"merge", m.K, m.Lines, m.ScanMS, m.HeapMS, m.Speedup)
	}
	fmt.Printf("workers=%d cpus=%d agree=%v -> %s\n", cmp.Workers, cmp.CPUs, cmp.Agree, path)
	if !cmp.Agree {
		return fmt.Errorf("combine plane disagrees with its serial baseline")
	}
	return nil
}

// writeBenchServe runs the service-plane comparison against a loopback
// daemon and writes the JSON report, echoing one line per measurement.
func writeBenchServe(ctx context.Context, path string, workers int) error {
	cmp, err := serve.Compare(ctx, workers)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(cmp, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, s := range cmp.Specs {
		fmt.Printf("%-22s space=%-7d cold=%8.1f ms  warm=%8.3f ms  speedup=%7.1fx tier=%s\n",
			s.Spec, s.Space, s.ColdMS, s.WarmMS, s.WarmSpeedup, s.WarmTier)
	}
	for _, th := range cmp.Throughput {
		fmt.Printf("clients=%-3d requests=%-4d wall=%8.1f ms  %8.1f req/s\n",
			th.Clients, th.Requests, th.WallMS, th.RPS)
	}
	fmt.Printf("workers=%d cpus=%d execute_agree=%v agree=%v -> %s\n",
		cmp.Workers, cmp.CPUs, cmp.ExecuteAgree, cmp.Agree, path)
	if !cmp.Agree {
		return fmt.Errorf("service plane disagrees: warm requests not ≥10× faster memory hits, or execute diverged")
	}
	return nil
}

// writeBenchFuse runs the fused-vs-unfused executor comparison and
// writes the JSON report, echoing one line per parallelism degree.
func writeBenchFuse(ctx context.Context, path string, scale int) error {
	cmp, err := bench.CompareFusion(ctx, scale)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(cmp, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, p := range cmp.Pairs {
		fmt.Printf("k=%-3d unfused=%8.1f ms (%d allocs)  fused=%8.1f ms (%d allocs)  speedup=%.2fx allocs=%.2fx\n",
			p.K, p.Unfused.WallMS, p.Unfused.Allocs, p.Fused.WallMS, p.Fused.Allocs,
			p.Speedup, p.AllocRatio)
	}
	fmt.Printf("rewrites=%v agree=%v -> %s\n", cmp.Rewrites, cmp.Agree, path)
	if !cmp.Agree {
		return fmt.Errorf("fused executor disagrees with the serial oracle")
	}
	return nil
}

// writeBenchIO runs the zero-copy data-plane measurement and writes the
// JSON report, echoing one line per stage and failing when fewer than
// three streaming stages meet the allocations/line gate.
func writeBenchIO(ctx context.Context, path string, scale int) error {
	cmp, err := bench.CompareIO(ctx, scale)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(cmp, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("corpus=%d bytes (%d lines) mapped=%v map=%.2fms index=%.1fms chunk64=%.3fms (%d allocs)\n",
		cmp.CorpusBytes, cmp.Scale, cmp.Ingest.Mapped, cmp.Ingest.MapWallMS,
		cmp.Ingest.IndexWallMS, cmp.Ingest.ChunkWallMS, cmp.Ingest.ChunkAllocs)
	for _, s := range cmp.Stages {
		fmt.Printf("%-22s %9.1f ms %8.1f MB/s  %.3f allocs/line\n",
			s.Spec, s.WallMS, s.MBPerSec, s.AllocsPerLine)
	}
	fmt.Printf("gate: %d stages <= %.1f allocs/line (pass=%v) -> %s\n",
		cmp.GateStages, cmp.GateLimit, cmp.GatePass, path)
	if !cmp.GatePass {
		return fmt.Errorf("allocations/line gate failed: %d stages under %.1f, need 3", cmp.GateStages, cmp.GateLimit)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kqbench:", err)
	os.Exit(1)
}
