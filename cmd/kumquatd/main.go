// Command kumquatd is the KumQuat daemon: an HTTP service exposing
// combiner synthesis, pipeline planning and streamed execution over one
// long-lived engine, so the combiner caches stay warm across requests
// and users.
//
// Usage:
//
//	kumquatd -addr :9917 -synth-cache /var/cache/kumquat
//
// Endpoints (see internal/server):
//
//	POST /v1/synthesize   {"spec": "uniq -c"} → combiner verdict
//	POST /v1/parallelize  {"script": "...", "files": {...}} → plan summary
//	POST /v1/execute?script=...&k=8&mode=optimized&fuse=on
//	                      body streams in as input, stdout streams back,
//	                      run report arrives in the X-Kumquat-Report trailer
//	                      (fuse=off pins the stage-at-a-time optimized path;
//	                      the report names the fired optimizer rewrites)
//	GET  /v1/version      build info + service limits
//	GET  /healthz         liveness (200 even while draining)
//	GET  /readyz          readiness (503 once draining starts)
//	GET  /metrics         Prometheus text exposition
//
// With -workers, kumquatd runs as a cluster coordinator: execute
// requests split their input into line-aligned shards dispatched to the
// listed worker daemons (plain kumquatds), with retry/backoff,
// speculative straggler re-dispatch, worker health ejection, and local
// fallback when the worker set is exhausted. See internal/cluster.
//
// SIGINT/SIGTERM starts a graceful drain: readiness flips to 503, the
// listener closes, in-flight requests get -drain-timeout to finish, then
// the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kumquat"
	"kumquat/internal/cluster"
	"kumquat/internal/server"
)

// splitWorkers parses the -workers flag into a trimmed address list.
func splitWorkers(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, w)
		}
	}
	return out
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9917", "listen address")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently-served requests (0 = 2×GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "max requests waiting for a slot before 429 (0 = 64)")
	defaultK := flag.Int("k", 0, "default execute parallelism (0 = GOMAXPROCS)")
	synthWorkers := flag.Int("synth-workers", 0, "synthesis worker pool size (0 = GOMAXPROCS)")
	cacheDir := flag.String("synth-cache", "", "directory for the on-disk combiner cache (empty = memory only)")
	seed := flag.Int64("seed", 1, "synthesis random seed")
	drain := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight requests")
	workers := flag.String("workers", "", "comma-separated worker base URLs enabling coordinator mode (e.g. http://127.0.0.1:9918,http://127.0.0.1:9919)")
	shards := flag.Int("shards", 0, "shards per parallel stage in coordinator mode (0 = worker count)")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-attempt deadline of one remote shard (0 = 30s)")
	retryMax := flag.Int("retry-max", 0, "re-dispatches per failed shard attempt chain (0 = 3)")
	speculateAfter := flag.Duration("speculate-after", 0, "minimum shard age before speculative re-dispatch (0 = 2s, negative disables)")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()

	if *version {
		kumquat.Info().Fprint(os.Stdout, "kumquatd")
		return
	}

	srv := server.New(server.Config{
		SynthOptions: kumquat.Options{
			Seed:     *seed,
			Workers:  *synthWorkers,
			CacheDir: *cacheDir,
		},
		MaxInFlight:        *maxInFlight,
		QueueDepth:         *queueDepth,
		DefaultParallelism: *defaultK,
		Cluster: cluster.Config{
			Workers:        splitWorkers(*workers),
			Shards:         *shards,
			ShardTimeout:   *shardTimeout,
			RetryMax:       *retryMax,
			SpeculateAfter: *speculateAfter,
		},
	})
	if ws := srv.Coordinator(); ws != nil {
		fmt.Fprintf(os.Stderr, "kumquatd: coordinator mode, %d workers, %d shards\n", len(ws.Workers()), ws.Shards())
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until the first SIGINT/SIGTERM, then drain: stop accepting,
	// give in-flight requests the drain budget, exit. A second signal
	// during the drain kills the process via the restored default
	// disposition.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "kumquatd: listening on %s\n", *addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "kumquatd:", err)
		os.Exit(1)
	case <-ctx.Done():
		stop() // re-arm default signal disposition for a hard second hit
		// Flip readiness before closing the listener so probes and
		// coordinators stop routing work here while streams finish.
		srv.SetDraining(true)
		fmt.Fprintf(os.Stderr, "kumquatd: draining (%v budget)\n", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "kumquatd: shutdown:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "kumquatd: drained")
	}
}
