// Command kumquatd is the KumQuat daemon: an HTTP service exposing
// combiner synthesis, pipeline planning and streamed execution over one
// long-lived engine, so the combiner caches stay warm across requests
// and users.
//
// Usage:
//
//	kumquatd -addr :9917 -synth-cache /var/cache/kumquat
//
// Endpoints (see internal/server):
//
//	POST /v1/synthesize   {"spec": "uniq -c"} → combiner verdict
//	POST /v1/parallelize  {"script": "...", "files": {...}} → plan summary
//	POST /v1/execute?script=...&k=8&mode=optimized&fuse=on
//	                      body streams in as input, stdout streams back,
//	                      run report arrives in the X-Kumquat-Report trailer
//	                      (fuse=off pins the stage-at-a-time optimized path;
//	                      the report names the fired optimizer rewrites)
//	GET  /v1/version      build info + service limits
//	GET  /v1/traces/{id}  recorded trace as Chrome trace-event JSON
//	                      (?format=raw for span records); execute requests
//	                      opt in with ?trace=on, ring sized by -trace-buffer
//	GET  /healthz         liveness (200 even while draining)
//	GET  /readyz          readiness (503 once draining starts)
//	GET  /metrics         Prometheus text exposition
//	GET  /debug/pprof/    runtime profiles, mounted only with -pprof
//
// Lifecycle and request logs are structured (log/slog, text to stderr);
// -log-level picks the floor and traced requests carry a trace_id key.
//
// With -workers, kumquatd runs as a cluster coordinator: execute
// requests split their input into line-aligned shards dispatched to the
// listed worker daemons (plain kumquatds), with retry/backoff,
// speculative straggler re-dispatch, worker health ejection, and local
// fallback when the worker set is exhausted. See internal/cluster.
//
// SIGINT/SIGTERM starts a graceful drain: readiness flips to 503, the
// listener closes, in-flight requests get -drain-timeout to finish, then
// the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kumquat"
	"kumquat/internal/cluster"
	"kumquat/internal/server"
)

// splitWorkers parses the -workers flag into a trimmed address list.
func splitWorkers(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, w)
		}
	}
	return out
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9917", "listen address")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently-served requests (0 = 2×GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "max requests waiting for a slot before 429 (0 = 64)")
	defaultK := flag.Int("k", 0, "default execute parallelism (0 = GOMAXPROCS)")
	synthWorkers := flag.Int("synth-workers", 0, "synthesis worker pool size (0 = GOMAXPROCS)")
	cacheDir := flag.String("synth-cache", "", "directory for the on-disk combiner cache (empty = memory only)")
	seed := flag.Int64("seed", 1, "synthesis random seed")
	drain := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight requests")
	workers := flag.String("workers", "", "comma-separated worker base URLs enabling coordinator mode (e.g. http://127.0.0.1:9918,http://127.0.0.1:9919)")
	shards := flag.Int("shards", 0, "shards per parallel stage in coordinator mode (0 = worker count)")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-attempt deadline of one remote shard (0 = 30s)")
	retryMax := flag.Int("retry-max", 0, "re-dispatches per failed shard attempt chain (0 = 3)")
	speculateAfter := flag.Duration("speculate-after", 0, "minimum shard age before speculative re-dispatch (0 = 2s, negative disables)")
	traceBuffer := flag.Int("trace-buffer", 64, "traces retained in the in-memory ring for GET /v1/traces/{id} (0 disables tracing)")
	logLevel := flag.String("log-level", "info", "structured-log level: debug, info, warn, error")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes runtime internals; keep off on untrusted networks)")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()

	if *version {
		kumquat.Info().Fprint(os.Stdout, "kumquatd")
		return
	}

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "kumquatd: -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	// The server treats TraceBuffer 0 as "use the default", so the flag's
	// 0 ("disable") maps to the config's explicit negative sentinel.
	tb := *traceBuffer
	if tb <= 0 {
		tb = -1
	}

	srv := server.New(server.Config{
		SynthOptions: kumquat.Options{
			Seed:     *seed,
			Workers:  *synthWorkers,
			CacheDir: *cacheDir,
		},
		MaxInFlight:        *maxInFlight,
		QueueDepth:         *queueDepth,
		DefaultParallelism: *defaultK,
		TraceBuffer:        tb,
		TraceProc:          "kumquatd@" + *addr,
		Logger:             logger,
		EnablePprof:        *pprof,
		Cluster: cluster.Config{
			Workers:        splitWorkers(*workers),
			Shards:         *shards,
			ShardTimeout:   *shardTimeout,
			RetryMax:       *retryMax,
			SpeculateAfter: *speculateAfter,
		},
	})
	if ws := srv.Coordinator(); ws != nil {
		logger.Info("coordinator mode", "workers", len(ws.Workers()), "shards", ws.Shards())
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until the first SIGINT/SIGTERM, then drain: stop accepting,
	// give in-flight requests the drain budget, exit. A second signal
	// during the drain kills the process via the restored default
	// disposition.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "trace_buffer", tb, "pprof", *pprof)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		stop() // re-arm default signal disposition for a hard second hit
		// Flip readiness before closing the listener so probes and
		// coordinators stop routing work here while streams finish.
		srv.SetDraining(true)
		logger.Info("draining", "budget", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Error("shutdown failed", "err", err)
			os.Exit(1)
		}
		logger.Info("drained")
	}
}
