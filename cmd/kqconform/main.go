// Command kqconform runs the conformance plane: it generates
// random-but-valid pipelines and corpora from a seed, executes each under
// every execution mode × worker count × combine-worker configuration,
// diffs every result byte-for-byte against the serial oracle,
// stress-validates the synthesized combiners on adversarial corpora, and
// replays the generated suite through a live loopback kumquatd.
//
// Usage:
//
//	kqconform -n 100 -seed 1             # full suite, JSON report on stdout
//	kqconform -n 25 -seed 1 -o CONFORM.json
//	kqconform -n 50 -shrink=false        # skip failure minimization
//	kqconform -serve=false -adversarial=false
//
// The exit status is 0 when every configuration reproduced the serial
// oracle, 1 otherwise; diverging cases are shrunk (unless -shrink=false)
// to a minimal reproducing corpus and stage list before reporting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"kumquat/internal/conformance"
)

func main() {
	n := flag.Int("n", 100, "number of generated cases")
	seed := flag.Int64("seed", 1, "generator seed (same seed + n = same suite)")
	shrink := flag.Bool("shrink", true, "minimize diverging cases before reporting")
	serve := flag.Bool("serve", true, "replay the suite through a loopback kumquatd")
	adversarial := flag.Bool("adversarial", true, "stress-validate combiners on adversarial corpora")
	synthWorkers := flag.Int("synth-workers", 0, "synthesis worker pool (0 = GOMAXPROCS)")
	out := flag.String("o", "", "write the JSON report to this file (default: stdout)")
	flag.Parse()

	rep, err := conformance.Run(context.Background(), conformance.Options{
		Seed:         *seed,
		N:            *n,
		Shrink:       *shrink,
		Serve:        *serve,
		Adversarial:  *adversarial,
		SynthWorkers: *synthWorkers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kqconform:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "kqconform:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "kqconform:", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(data)
	}

	summary(rep)
	if !rep.OK {
		os.Exit(1)
	}
}

// summary prints the one-line human verdict (stderr, so a piped stdout
// stays pure JSON).
func summary(rep *conformance.Report) {
	adv, srv := "-", "-"
	if rep.Adversarial != nil {
		adv = fmt.Sprintf("%d checks, %d failures", rep.Adversarial.Checks, len(rep.Adversarial.Failures))
	}
	if rep.Serve != nil {
		srv = fmt.Sprintf("%d cases, %d divergences", rep.Serve.Cases, len(rep.Serve.Divergences))
	}
	fmt.Fprintf(os.Stderr,
		"kqconform: seed=%d cases=%d configs=%d executions=%d divergences=%d adversarial=[%s] serve=[%s] wall=%.0fms ok=%v\n",
		rep.Seed, rep.Cases, rep.Configs, rep.Executions, len(rep.Divergences), adv, srv, rep.WallMS, rep.OK)
}
