// Command kqconform runs the conformance plane: it generates
// random-but-valid pipelines and corpora from a seed, executes each under
// every execution mode × worker count × combine-worker configuration,
// diffs every result byte-for-byte against the serial oracle,
// stress-validates the synthesized combiners on adversarial corpora, and
// replays the generated suite through a live loopback kumquatd.
//
// Usage:
//
//	kqconform -n 100 -seed 1             # full suite, JSON report on stdout
//	kqconform -n 25 -seed 1 -o CONFORM.json
//	kqconform -n 50 -shrink=false        # skip failure minimization
//	kqconform -fail-fast                 # stop and shrink at the first divergence
//	kqconform -serve=false -adversarial=false
//	kqconform -cluster -require-faults 5 # chaos: 3-worker cluster behind
//	                                     # fault proxies + mid-suite kills
//	kqconform -cluster -trace-sample TRACE.json
//	                                     # also export one stitched
//	                                     # coordinator+worker trace
//	                                     # (Chrome trace-event JSON)
//
// The exit status is 0 when every configuration reproduced the serial
// oracle, 1 otherwise; diverging cases are shrunk (unless -shrink=false)
// to a minimal reproducing corpus and stage list before reporting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"kumquat/internal/conformance"
	"kumquat/internal/dataflow"
)

func main() {
	n := flag.Int("n", 100, "number of generated cases")
	seed := flag.Int64("seed", 1, "generator seed (same seed + n = same suite)")
	shrink := flag.Bool("shrink", true, "minimize diverging cases before reporting")
	failFast := flag.Bool("fail-fast", false, "stop at the first divergence and shrink it immediately")
	requireRules := flag.Int("require-rules", 0, "fail unless every optimizer rewrite fired at least this many times")
	serve := flag.Bool("serve", true, "replay the suite through a loopback kumquatd")
	clusterReplay := flag.Bool("cluster", false, "replay the suite through a loopback 3-worker cluster behind fault-injecting proxies")
	requireFaults := flag.Int("require-faults", 0, "with -cluster: fail unless at least this many faults were injected AND the run retried and speculated at least once")
	adversarial := flag.Bool("adversarial", true, "stress-validate combiners on adversarial corpora")
	synthWorkers := flag.Int("synth-workers", 0, "synthesis worker pool (0 = GOMAXPROCS)")
	traceSample := flag.String("trace-sample", "", "with -cluster: write the sampled stitched trace as Chrome trace-event JSON to this file (fails if no trace was captured)")
	out := flag.String("o", "", "write the JSON report to this file (default: stdout)")
	flag.Parse()

	rep, err := conformance.Run(context.Background(), conformance.Options{
		Seed:         *seed,
		N:            *n,
		Shrink:       *shrink,
		FailFast:     *failFast,
		Serve:        *serve,
		Cluster:      *clusterReplay,
		Adversarial:  *adversarial,
		SynthWorkers: *synthWorkers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kqconform:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "kqconform:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "kqconform:", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(data)
	}

	summary(rep)
	ok := rep.OK
	if *traceSample != "" {
		// The sample is the PR's proof artifact: one clustered run's spans
		// stitched across coordinator and workers, viewable in
		// chrome://tracing. No sample on a run that asked for one is a
		// failure, not a shrug.
		if rep.Cluster == nil || rep.Cluster.TraceSample == nil {
			fmt.Fprintln(os.Stderr, "kqconform: -trace-sample: no stitched trace was captured (need -cluster)")
			ok = false
		} else if data, terr := rep.Cluster.TraceSample.ChromeTrace(); terr != nil {
			fmt.Fprintln(os.Stderr, "kqconform: -trace-sample:", terr)
			ok = false
		} else if werr := os.WriteFile(*traceSample, data, 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "kqconform: -trace-sample:", werr)
			ok = false
		} else {
			fmt.Fprintf(os.Stderr, "kqconform: trace sample: %d spans over %d processes (%d retry, %d speculate events) -> %s\n",
				rep.Cluster.TraceSpans, rep.Cluster.TraceProcs,
				rep.Cluster.TraceRetryEvents, rep.Cluster.TraceSpeculationEvents, *traceSample)
		}
	}
	if *requireRules > 0 {
		// A suite that never triggers a rewrite proves nothing about it;
		// the floor turns "zero divergences" into "zero divergences while
		// each rule demonstrably ran".
		for _, rule := range []dataflow.Rule{
			dataflow.RuleFuseStreamers, dataflow.RuleElideCombine, dataflow.RulePushSortMerge,
		} {
			if got := rep.Rewrites[string(rule)]; got < *requireRules {
				fmt.Fprintf(os.Stderr, "kqconform: rewrite %s fired %d times, need >= %d\n",
					rule, got, *requireRules)
				ok = false
			}
		}
	}
	if *requireFaults > 0 && rep.Cluster != nil {
		// A chaos run that never injected a fault (or never had to retry
		// or speculate) proves nothing about recovery; the floor turns
		// "zero divergences" into "zero divergences under demonstrated
		// fire".
		if rep.Cluster.FaultsInjected < int64(*requireFaults) {
			fmt.Fprintf(os.Stderr, "kqconform: %d faults injected, need >= %d\n",
				rep.Cluster.FaultsInjected, *requireFaults)
			ok = false
		}
		if rep.Cluster.Retries < 1 {
			fmt.Fprintln(os.Stderr, "kqconform: chaos run never retried a shard")
			ok = false
		}
		if rep.Cluster.Speculations < 1 {
			fmt.Fprintln(os.Stderr, "kqconform: chaos run never speculated a straggler")
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// summary prints the one-line human verdict (stderr, so a piped stdout
// stays pure JSON).
func summary(rep *conformance.Report) {
	adv, srv, clu := "-", "-", "-"
	if rep.Adversarial != nil {
		adv = fmt.Sprintf("%d checks, %d failures", rep.Adversarial.Checks, len(rep.Adversarial.Failures))
	}
	if rep.Serve != nil {
		srv = fmt.Sprintf("%d cases, %d divergences", rep.Serve.Cases, len(rep.Serve.Divergences))
	}
	if rep.Cluster != nil {
		clu = fmt.Sprintf("%d cases, %d divergences, %d faults, %d retries, %d speculations, %d local",
			rep.Cluster.Cases, len(rep.Cluster.Divergences), rep.Cluster.FaultsInjected,
			rep.Cluster.Retries, rep.Cluster.Speculations, rep.Cluster.LocalRuns)
	}
	rules := make([]string, 0, len(rep.Rewrites))
	for r := range rep.Rewrites {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	fired := make([]string, len(rules))
	for i, r := range rules {
		fired[i] = fmt.Sprintf("%s=%d", r, rep.Rewrites[r])
	}
	fmt.Fprintf(os.Stderr,
		"kqconform: seed=%d cases=%d configs=%d executions=%d divergences=%d rewrites=[%s] adversarial=[%s] serve=[%s] cluster=[%s] wall=%.0fms ok=%v\n",
		rep.Seed, rep.Cases, rep.Configs, rep.Executions, len(rep.Divergences),
		strings.Join(fired, " "), adv, srv, clu, rep.WallMS, rep.OK)
}
