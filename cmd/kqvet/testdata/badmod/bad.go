//kqvet:hotpath
//kqvet:docs

// Package badmod is the kqvet smoke fixture: a stdlib-only module whose
// single package violates one invariant per comment-directive-gated or
// always-on analyzer, so the smoke test can assert the multichecker's
// exit code and diagnostic set end to end. It lives in its own module
// (testdata is invisible to the parent module's go list) and must not
// import kumquat packages — the internal-import restriction blocks a
// separate module from reaching them, which is also why the poolpair and
// captable analyzers (keyed to kumquat/internal types) stay silent here.
package badmod

import (
	"context"
	"fmt"
)

// Lookup severs cancellation: ctxflow must flag the fresh root.
func Lookup(key string) string {
	ctx := context.Background()
	_ = ctx
	return key
}

// Render allocates per iteration: hotalloc must flag the Sprintf (the
// package opts into the hot-path bar via the kqvet:hotpath directive).
func Render(keys []string) []string {
	out := make([]string, 0, len(keys))
	for i, k := range keys {
		out = append(out, fmt.Sprintf("%d=%s", i, k))
	}
	return out
}

// Fire leaks: goroleak must flag the unbounded goroutine.
func Fire(work func()) {
	go work()
}

func Undocumented() {}
