// Command kqvet is the repository's invariant multichecker: custom
// static analyzers encoding the invariants the paper's guarantees rest
// on but the compiler cannot see — pooled-buffer pairing (poolpair),
// context propagation (ctxflow), allocation-lean hot paths (hotalloc),
// bounded goroutines (goroleak), the combiner capability table
// (captable), and godoc coverage (docs).
//
// Usage:
//
//	go run ./cmd/kqvet ./...                  # check everything
//	go run ./cmd/kqvet -analyzers ctxflow ./...
//	go run ./cmd/kqvet -json KQVET.json ./... # CI artifact
//	go run ./cmd/kqvet -write-baseline ./...  # pin current findings
//
// Findings already pinned in the baseline file (default .kqvet.json)
// are reported but do not fail the run — provided each pin carries a
// justification. Unjustified pins and stale pins fail, so the baseline
// stays an honest, explained record rather than a mute suppression list.
// Exit codes: 0 clean, 1 findings, 2 internal error.
package main

import (
	"flag"
	"os"
	"strings"

	"kumquat/internal/analysis/kqvet"
)

func main() {
	baseline := flag.String("baseline", ".kqvet.json", "baseline file pinning accepted findings (empty to disable)")
	writeBaseline := flag.Bool("write-baseline", false, "regenerate the baseline from current findings and exit")
	jsonOut := flag.String("json", "", "write the full findings report (baselined included) to this JSON file")
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	dir := flag.String("C", ".", "working directory for package resolution")
	flag.Parse()

	opts := kqvet.Options{
		Dir:           *dir,
		Patterns:      flag.Args(),
		Baseline:      *baseline,
		WriteBaseline: *writeBaseline,
		JSONOut:       *jsonOut,
	}
	if *analyzers != "" {
		opts.Analyzers = strings.Split(*analyzers, ",")
	}
	os.Exit(kqvet.Main(opts, os.Stdout, os.Stderr))
}
