package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kumquat/internal/analysis"
	"kumquat/internal/analysis/kqvet"
)

// wantSmoke is the exact diagnostic set the known-bad fixture module must
// produce: one finding per analyzer the fixture can trigger without
// importing kumquat/internal packages (poolpair and captable key on those
// types, so a separate module cannot violate them).
var wantSmoke = map[string]string{
	"ctxflow":  "bad.go",
	"docs":     "bad.go",
	"goroleak": "bad.go",
	"hotalloc": "bad.go",
}

// TestSmokeBadModule runs the whole multichecker in-process over the
// testdata/badmod fixture module and asserts the exit code and the
// analyzer->file diagnostic set.
func TestSmokeBadModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	jsonOut := filepath.Join(t.TempDir(), "kqvet.json")
	code := kqvet.Main(kqvet.Options{
		Dir:      "testdata/badmod",
		Patterns: []string{"./..."},
		JSONOut:  jsonOut,
	}, &stdout, &stderr)
	if code != kqvet.ExitFindings {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, kqvet.ExitFindings, stderr.String())
	}

	data, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatalf("reading JSON report: %v", err)
	}
	var rep kqvet.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decoding JSON report: %v", err)
	}
	got := map[string]string{}
	for _, f := range rep.Findings {
		if f.Baselined {
			t.Errorf("finding unexpectedly baselined: %s", f)
		}
		got[f.Analyzer] = f.File
	}
	for a, file := range wantSmoke {
		if got[a] != file {
			t.Errorf("analyzer %s: diagnostic in %q, want %q", a, got[a], file)
		}
	}
	for a := range got {
		if _, ok := wantSmoke[a]; !ok {
			t.Errorf("unexpected analyzer fired: %s", a)
		}
	}
	if rep.Unbaselined != len(rep.Findings) {
		t.Errorf("unbaselined = %d, want all %d", rep.Unbaselined, len(rep.Findings))
	}
	if !strings.Contains(stderr.String(), "ctxflow") {
		t.Errorf("stderr missing human-readable findings: %q", stderr.String())
	}
}

// TestSmokeBaseline pins every fixture finding with a justification and
// asserts the run turns clean — and that dropping a justification or
// pinning a finding that no longer occurs fails again.
func TestSmokeBaseline(t *testing.T) {
	run := func(baseline string) (int, string) {
		var stdout, stderr bytes.Buffer
		code := kqvet.Main(kqvet.Options{
			Dir:      "testdata/badmod",
			Patterns: []string{"./..."},
			Baseline: baseline,
		}, &stdout, &stderr)
		return code, stderr.String()
	}

	// Harvest the current findings into a fully justified baseline.
	var out bytes.Buffer
	jsonOut := filepath.Join(t.TempDir(), "kqvet.json")
	if code := kqvet.Main(kqvet.Options{
		Dir: "testdata/badmod", Patterns: []string{"./..."}, JSONOut: jsonOut,
	}, &out, &out); code != kqvet.ExitFindings {
		t.Fatalf("harvest run exit = %d, want %d", code, kqvet.ExitFindings)
	}
	data, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var rep kqvet.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	var entries []analysis.BaselineEntry
	for _, f := range rep.Findings {
		entries = append(entries, analysis.BaselineEntry{
			Analyzer:      f.Analyzer,
			File:          f.File,
			Message:       f.Message,
			Justification: "smoke fixture: intentionally violating for the test",
		})
	}

	dir := t.TempDir()
	justified := filepath.Join(dir, "justified.json")
	if err := analysis.WriteBaseline(justified, entries); err != nil {
		t.Fatal(err)
	}
	if code, errs := run(justified); code != kqvet.ExitClean {
		t.Errorf("justified baseline: exit = %d, want %d (stderr: %s)", code, kqvet.ExitClean, errs)
	}

	// An unjustified pin is a failure, not a suppression.
	bare := append([]analysis.BaselineEntry(nil), entries...)
	bare[0].Justification = ""
	unjustified := filepath.Join(dir, "unjustified.json")
	if err := analysis.WriteBaseline(unjustified, bare); err != nil {
		t.Fatal(err)
	}
	code, errs := run(unjustified)
	if code != kqvet.ExitFindings {
		t.Errorf("unjustified pin: exit = %d, want %d", code, kqvet.ExitFindings)
	}
	if !strings.Contains(errs, "baselined without justification") {
		t.Errorf("unjustified pin: stderr %q missing justification complaint", errs)
	}

	// A pin whose finding no longer occurs is stale and fails the run.
	withStale := append(append([]analysis.BaselineEntry(nil), entries...), analysis.BaselineEntry{
		Analyzer:      "ctxflow",
		File:          "gone.go",
		Message:       "context.Background in library code severs cancellation; thread the caller's ctx instead",
		Justification: "pinned against a file that does not exist",
	})
	stale := filepath.Join(dir, "stale.json")
	if err := analysis.WriteBaseline(stale, withStale); err != nil {
		t.Fatal(err)
	}
	code, errs = run(stale)
	if code != kqvet.ExitFindings {
		t.Errorf("stale pin: exit = %d, want %d", code, kqvet.ExitFindings)
	}
	if !strings.Contains(errs, "stale baseline entry") {
		t.Errorf("stale pin: stderr %q missing staleness complaint", errs)
	}
}

// TestRepoClean asserts the committed baseline keeps the repository's own
// kqvet run green — the CI gate in miniature. Every committed pin must
// carry a justification by construction, or this fails.
func TestRepoClean(t *testing.T) {
	root := analysis.ModuleRoot(".")
	if root == "" {
		t.Fatal("module root not found")
	}
	var stdout, stderr bytes.Buffer
	code := kqvet.Main(kqvet.Options{
		Dir:      root,
		Patterns: []string{"./..."},
		Baseline: filepath.Join(root, ".kqvet.json"),
	}, &stdout, &stderr)
	if code != kqvet.ExitClean {
		t.Errorf("repository kqvet run exit = %d, want %d\n%s", code, kqvet.ExitClean, stderr.String())
	}
	if !strings.Contains(stdout.String(), fmt.Sprintf("%d analyzers", len(kqvet.All()))) {
		t.Errorf("summary %q missing analyzer count", stdout.String())
	}
}
