package kumquat

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"

	"kumquat/internal/synth/cache"
)

// BuildInfo describes the running build and its effective defaults — the
// payload behind `kumquat version`, `kumquatd -version` and the daemon's
// GET /v1/version endpoint.
type BuildInfo struct {
	// Module is the Go module path ("kumquat").
	Module string `json:"module"`
	// Version is the module's build version ("(devel)" for a source
	// build, "unknown" when the binary carries no build info).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision and Modified carry VCS stamping when the build embeds it.
	Revision string `json:"revision,omitempty"`
	Modified bool   `json:"modified,omitempty"`
	// GOMAXPROCS and NumCPU describe the process's effective parallelism.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// DefaultSynthWorkers is the synthesis worker-pool default
	// (Options.Workers == 0 resolves to this).
	DefaultSynthWorkers int `json:"default_synth_workers"`
	// DefaultCacheSize is the in-memory combiner LRU default capacity
	// (Options.CacheSize == 0 resolves to this).
	DefaultCacheSize int `json:"default_cache_size"`
}

// Info reports the running build's BuildInfo.
func Info() BuildInfo {
	bi := BuildInfo{
		Module:              "kumquat",
		Version:             "unknown",
		GoVersion:           runtime.Version(),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		NumCPU:              runtime.NumCPU(),
		DefaultSynthWorkers: runtime.GOMAXPROCS(0),
		DefaultCacheSize:    cache.DefaultCapacity,
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.Main.Path != "" {
			bi.Module = info.Main.Path
		}
		if info.Main.Version != "" {
			bi.Version = info.Main.Version
		}
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				bi.Revision = s.Value
			case "vcs.modified":
				bi.Modified = s.Value == "true"
			}
		}
	}
	return bi
}

// Fprint renders the build surface in the CLIs' key: value form under
// the given binary name — the one rendering `kumquat version` and
// `kumquatd -version` share.
func (bi BuildInfo) Fprint(w io.Writer, binary string) {
	fmt.Fprintf(w, "%s %s (%s)\n", binary, bi.Version, bi.GoVersion)
	if bi.Revision != "" {
		fmt.Fprintf(w, "revision:      %s (modified=%v)\n", bi.Revision, bi.Modified)
	}
	fmt.Fprintf(w, "gomaxprocs:    %d (of %d CPUs)\n", bi.GOMAXPROCS, bi.NumCPU)
	fmt.Fprintf(w, "synth workers: %d (default)\n", bi.DefaultSynthWorkers)
	fmt.Fprintf(w, "combiner LRU:  %d entries (default)\n", bi.DefaultCacheSize)
}
