module kumquat

go 1.24
