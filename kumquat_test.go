package kumquat

import (
	"strings"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	env := NewEnv()
	env.Register("in.txt", "b\na\nb\n")
	sys := New(env)

	res, err := sys.Synthesize("wc -l")
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if res.Combiner == nil || !strings.Contains(res.Combiner.String(), "add") {
		t.Errorf("wc -l combiner = %v", res.Combiner)
	}

	plan, err := sys.Parallelize("cat in.txt | sort | uniq -c\n")
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	par, total, _ := plan.Counts()
	if par != 2 || total != 2 {
		t.Errorf("counts = %d/%d", par, total)
	}
	want, err := plan.RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 8} {
		got, err := plan.Run(k)
		if err != nil || got != want {
			t.Errorf("Run(%d) = %q, %v; want %q", k, got, err, want)
		}
		got, err = plan.RunUnoptimized(k)
		if err != nil || got != want {
			t.Errorf("RunUnoptimized(%d) = %q, %v", k, got, err)
		}
	}
	got, err := plan.RunPipelined()
	if err != nil || got != want {
		t.Errorf("RunPipelined = %q, %v", got, err)
	}
}

func TestPublicAPIStages(t *testing.T) {
	env := NewEnv()
	env.Register("x", "Some Light text\nmore WORDS here\n")
	sys := New(env)
	plan, err := sys.Parallelize(`cat x | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	stages := plan.Stages()
	if len(stages) != 5 {
		t.Fatalf("stages = %d", len(stages))
	}
	if !stages[0].Sequential {
		t.Error("tr -cs should be sequential")
	}
	if !stages[1].Eliminated {
		t.Error("tr A-Z a-z should have its combiner eliminated")
	}
	if stages[3].Combiner == "" || !strings.Contains(stages[3].Combiner, "stitch2") {
		t.Errorf("uniq -c combiner = %q", stages[3].Combiner)
	}
}

func TestPublicAPIRunCommand(t *testing.T) {
	sys := New(nil)
	out, err := sys.RunCommand("tr A-Z a-z", "HeLLo\n")
	if err != nil || out != "hello\n" {
		t.Errorf("RunCommand = %q, %v", out, err)
	}
	if _, err := sys.RunCommand("nope", "x\n"); err == nil {
		t.Error("unknown command should error")
	}
}

func TestPublicAPICombine(t *testing.T) {
	sys := New(nil)
	got, err := sys.Combine("(stitch2 ' ' add first a b)", "uniq -c",
		"      3 apple\n      2 pear\n", "      4 pear\n      1 quince\n")
	if err != nil || got != "      3 apple\n      6 pear\n      1 quince\n" {
		t.Errorf("Combine = %q, %v", got, err)
	}
	// Merge binds the command's comparator.
	got, err = sys.Combine("merge a b", "sort -rn", "9\n5\n", "7\n2\n")
	if err != nil || got != "9\n7\n5\n2\n" {
		t.Errorf("Combine merge = %q, %v", got, err)
	}
	if _, err := sys.Combine("nonsense", "sort", "a\n", "b\n"); err == nil {
		t.Error("bad combiner text must error")
	}
}

func TestPublicAPITable9(t *testing.T) {
	sys := New(nil)
	if _, err := sys.Synthesize("tail +2"); err == nil {
		t.Error("tail +2 must fail synthesis (Table 9)")
	}
}
