package kumquat

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// unix50Pipelines mirrors examples/unix50's puzzle selection at test scale
// — the compat-equivalence corpus.
var unix50Pipelines = []struct{ name, src string }{
	{"4.4", `cat in/chess.txt | tr ' ' '\n' | grep 'x' | grep '\.' | cut -d '.' -f 2 | grep '[KQRBN]' | cut -c 1-1 | sort | uniq -c | sort -rn`},
	{"7.1", `cat in/history.tsv | cut -f 1 | grep 'AT&T' | wc -l`},
	{"1.3", `cat in/names.txt | cut -d ' ' -f 1 | sort | uniq -c | sort -rn`},
}

func registerUnix50Inputs(env *Env) {
	var chess, hist, names strings.Builder
	for i := 0; i < 600; i++ {
		fmt.Fprintf(&chess, "%d.Qxe%d Nf%d %d.xa%d b%d\n", i%30+1, i%8+1, i%8+1, i%30+2, i%8+1, i%8+1)
		fmt.Fprintf(&hist, "%s\tpdp%d\tv%d\n", []string{"AT&T Bell Labs", "Berkeley CSRG", "MIT"}[i%3], i%5+7, i%10+1)
		fmt.Fprintf(&names, "%s %s\n", []string{"Ken", "Dennis", "Brian", "Rob", "Doug"}[i%5],
			[]string{"Thompson", "Ritchie", "Kernighan", "Pike", "McIlroy"}[i%5])
	}
	env.Register("in/chess.txt", chess.String())
	env.Register("in/history.tsv", hist.String())
	env.Register("in/names.txt", names.String())
}

// TestExecuteCompatEquivalence: the legacy Run* wrappers and Execute must
// produce byte-identical outputs in every mode on the unix50 examples.
func TestExecuteCompatEquivalence(t *testing.T) {
	env := NewEnv()
	registerUnix50Inputs(env)
	sys := New(env)
	ctx := context.Background()
	for _, p := range unix50Pipelines {
		plan, err := sys.Parallelize(p.src + "\n")
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		legacy := map[Mode]func() (string, error){
			Optimized:   func() (string, error) { return plan.Run(4) },
			Unoptimized: func() (string, error) { return plan.RunUnoptimized(4) },
			Serial:      plan.RunSerial,
			Pipelined:   plan.RunPipelined,
		}
		want, err := plan.RunSerial()
		if err != nil {
			t.Fatalf("%s serial: %v", p.name, err)
		}
		for mode, run := range legacy {
			old, err := run()
			if err != nil {
				t.Errorf("%s %v legacy: %v", p.name, mode, err)
				continue
			}
			rep, err := plan.Execute(ctx, WithMode(mode), WithParallelism(4))
			if err != nil {
				t.Errorf("%s %v Execute: %v", p.name, mode, err)
				continue
			}
			if old != rep.Output {
				t.Errorf("%s %v: legacy and Execute outputs differ (%d vs %d bytes)",
					p.name, mode, len(old), len(rep.Output))
			}
			if rep.Output != want {
				t.Errorf("%s %v: output differs from serial ground truth", p.name, mode)
			}
		}
	}
}

// trackingReader counts produced lines; trackingWriter witnesses output
// arriving before the input is exhausted (i.e. true streaming).
type trackingReader struct {
	total   int64
	emitted atomic.Int64
}

func (g *trackingReader) Read(p []byte) (int, error) {
	n := g.emitted.Load()
	if n >= g.total {
		return 0, io.EOF
	}
	line := fmt.Sprintf("light line %d\n", n)
	if len(p) < len(line) {
		return 0, io.ErrShortBuffer
	}
	g.emitted.Add(1)
	return copy(p, line), nil
}

type trackingWriter struct {
	gen        *trackingReader
	sawPartial atomic.Bool
	n          atomic.Int64
}

func (w *trackingWriter) Write(p []byte) (int, error) {
	if w.gen.emitted.Load() < w.gen.total {
		w.sawPartial.Store(true)
	}
	w.n.Add(int64(len(p)))
	return len(p), nil
}

// TestExecuteStreamsStdinToOutput is the acceptance check for the
// streaming API: a line-mapper-only pipeline fed via WithStdin and drained
// via WithOutput produces output while input is still being generated.
func TestExecuteStreamsStdinToOutput(t *testing.T) {
	sys := New(nil)
	plan, err := sys.Parallelize("grep light | tr a-z A-Z\n")
	if err != nil {
		t.Fatal(err)
	}
	gen := &trackingReader{total: 100000}
	sink := &trackingWriter{gen: gen}
	rep, err := plan.Execute(context.Background(),
		WithStdin(gen), WithOutput(sink), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if !sink.sawPartial.Load() {
		t.Error("no output before input exhausted: the pipeline materialized the stream")
	}
	if rep.Output != "" {
		t.Error("RunReport.Output must stay empty when WithOutput is given")
	}
	if rep.BytesOut != sink.n.Load() || rep.BytesOut == 0 {
		t.Errorf("BytesOut = %d, sink received %d", rep.BytesOut, sink.n.Load())
	}
	for _, st := range rep.Stages {
		if !st.Streamed {
			t.Errorf("stage %q did not stream", st.Spec)
		}
	}
}

// TestExecuteReportVerdicts: RunReport stages carry the same planning
// verdicts as Plan.Stages(), merged with execution metrics.
func TestExecuteReportVerdicts(t *testing.T) {
	env := NewEnv()
	env.Register("x", "Some Light text\nmore WORDS here\n")
	sys := New(env)
	plan, err := sys.Parallelize(`cat x | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Execute(context.Background(), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	infos := plan.Stages()
	if len(rep.Stages) != len(infos) {
		t.Fatalf("report has %d stages, plan has %d", len(rep.Stages), len(infos))
	}
	for i, st := range rep.Stages {
		if st.StageInfo != infos[i] {
			t.Errorf("stage %d verdict = %+v, want %+v", i, st.StageInfo, infos[i])
		}
		if st.Pipeline != 0 {
			t.Errorf("stage %d pipeline index = %d", i, st.Pipeline)
		}
	}
	if rep.Mode != Optimized || rep.Parallelism != 2 {
		t.Errorf("report config = %v/%d", rep.Mode, rep.Parallelism)
	}
	if rep.Wall <= 0 || rep.BytesIn == 0 || rep.BytesOut == 0 {
		t.Errorf("report volume/wall not recorded: %+v", rep)
	}
	// An out-of-range mode must error, not silently run optimized.
	if _, err := plan.Execute(context.Background(), WithMode(Mode(9))); err == nil {
		t.Error("Execute accepted unknown Mode(9)")
	}
}

// cancelReader cancels the context after a fixed number of reads and then
// keeps producing forever.
type cancelReader struct {
	after  int64
	reads  atomic.Int64
	cancel context.CancelFunc
}

func (g *cancelReader) Read(p []byte) (int, error) {
	if g.reads.Add(1) == g.after {
		g.cancel()
	}
	const line = "light word here\n"
	if len(p) < len(line) {
		return 0, io.ErrShortBuffer
	}
	return copy(p, line), nil
}

// TestExecuteCancellation: mid-stream cancellation must abort every mode
// promptly with ctx.Err() and leak no goroutines.
func TestExecuteCancellation(t *testing.T) {
	sys := New(nil)
	plan, err := sys.Parallelize("grep light | sort | uniq -c\n")
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for _, mode := range []Mode{Optimized, Unoptimized, Serial, Pipelined} {
		ctx, cancel := context.WithCancel(context.Background())
		gen := &cancelReader{after: 300, cancel: cancel}
		done := make(chan error, 1)
		go func() {
			_, err := plan.Execute(ctx, WithMode(mode), WithParallelism(4),
				WithStdin(gen), WithOutput(io.Discard))
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%v: err = %v, want context.Canceled", mode, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%v: Execute did not return after cancellation", mode)
		}
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutine leak: %d before, %d after", before, n)
	}
}

// TestExecuteOutputRedirect: a script pipeline redirecting to a file must
// register its output in the environment, not write it to the sink.
func TestExecuteOutputRedirect(t *testing.T) {
	env := NewEnv()
	env.Register("in.txt", "b\na\nb\n")
	sys := New(env)
	plan, err := sys.Parallelize("cat in.txt | sort | uniq -c > counts.txt\ncat counts.txt | wc -l\n")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Execute(context.Background(), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Output != "2\n" {
		t.Errorf("final output = %q, want %q", rep.Output, "2\n")
	}
	counts, err := env.Read("counts.txt")
	if err != nil || !strings.Contains(counts, "2 b") {
		t.Errorf("redirect target = %q, %v", counts, err)
	}
}
