// Package examples_test smoke-tests the example programs: each must
// build, run to completion, and print non-empty, deterministic output.
// Wall-clock readings and speedup ratios are the only run-to-run
// variance the examples are allowed — everything else (planning
// verdicts, combiners, computed answers, correctness flags) must be
// byte-identical across runs.
package examples_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// examplePrograms lists every directory under examples/ with a main
// package; TestExamplesComplete keeps it in sync with the tree.
var examplePrograms = []string{"quickstart", "wordfreq", "unix50", "analytics"}

// durationRE matches Go duration renderings, including composite forms
// (77.574µs, 54ms, 1.2s, 1m2.3s, 1h2m3s).
var durationRE = regexp.MustCompile(`(\d+(\.\d+)?(ns|µs|us|ms|s|m|h))+\b`)

// ratioRE matches speedup ratios ((0.97x), 1.08x).
var ratioRE = regexp.MustCompile(`\d+(\.\d+)?x\b`)

// spacesRE collapses padding that varies with the width of the numbers
// the other rules erased.
var spacesRE = regexp.MustCompile(` +`)

// normalize erases the timing-dependent parts of an example's output.
func normalize(out string) string {
	out = ratioRE.ReplaceAllString(out, "RATIO")
	out = durationRE.ReplaceAllString(out, "DUR")
	return spacesRE.ReplaceAllString(out, " ")
}

// TestExamples builds and runs every example program twice and asserts
// the normalized outputs are non-empty, identical across runs, and
// contain none of the failure markers the examples print on divergence.
func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples rebuild and run full pipelines; skipped in -short")
	}
	bin := t.TempDir()
	for _, name := range examplePrograms {
		t.Run(name, func(t *testing.T) {
			exe := filepath.Join(bin, name)
			build := exec.Command("go", "build", "-o", exe, "./"+name)
			build.Dir = "."
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build ./examples/%s: %v\n%s", name, err, out)
			}
			run := func() string {
				cmd := exec.Command(exe)
				cmd.Dir = "."
				out, err := cmd.CombinedOutput()
				if err != nil {
					t.Fatalf("%s failed: %v\n%s", name, err, out)
				}
				return string(out)
			}
			first, second := run(), run()
			if strings.TrimSpace(first) == "" {
				t.Fatalf("%s produced no output", name)
			}
			for _, marker := range []string{"correct=false", "ok=false", "matches serial output: false"} {
				if strings.Contains(first, marker) {
					t.Fatalf("%s reported a divergence:\n%s", name, first)
				}
			}
			a, b := normalize(first), normalize(second)
			if a != b {
				t.Fatalf("%s output not deterministic after normalization:\n--- run 1\n%s\n--- run 2\n%s", name, a, b)
			}
		})
	}
}

// TestExamplesComplete fails when a new example directory is added
// without being wired into the smoke test.
func TestExamplesComplete(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	listed := map[string]bool{}
	for _, name := range examplePrograms {
		listed[name] = true
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !listed[e.Name()] {
			t.Errorf("examples/%s is not covered by the smoke test; add it to examplePrograms", e.Name())
		}
	}
}
