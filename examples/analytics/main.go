// Analytics reproduces the paper's mass-transit (COVID-19 bus telemetry)
// workload: the four analytics-mts scripts over synthetic CSV telemetry,
// executed serially and with 8-way optimized data parallelism.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"kumquat"
)

var scripts = []struct{ name, src string }{
	{"vehicles per day",
		`cat in/mts.csv | sed 's/T..:..:..//' | cut -d ',' -f 1,3 | sort -u | cut -d ',' -f 1 | sort | uniq -c | awk -v OFS="\t" "{print \$2,\$1}"`},
	{"vehicle days on road",
		`cat in/mts.csv | sed 's/T..:..:..//' | cut -d ',' -f 3,1 | sort -u | cut -d ',' -f 2 | sort | uniq -c | sort -k1n | awk -v OFS="\t" "{print \$2,\$1}"`},
	{"vehicle hours on road",
		`cat in/mts.csv | sed 's/T\(..\):..:../,\1/' | cut -d ',' -f 1,2,4 | sort -u | cut -d ',' -f 3 | sort | uniq -c | sort -k1n | awk -v OFS="\t" "{print \$2,\$1}"`},
	{"hours monitored per day",
		`cat in/mts.csv | sed 's/T\(..\):..:../,\1/' | cut -d ',' -f 1,2 | sort -u | cut -d ',' -f 1 | sort | uniq -c | awk -v OFS="\t" "{print \$2,\$1}"`},
}

func main() {
	env := kumquat.NewEnv()
	env.Register("in/mts.csv", telemetry(120000))
	sys := kumquat.New(env)

	for _, s := range scripts {
		plan, err := sys.Parallelize(s.src + "\n")
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		par, total, elim := plan.Counts()

		ctx := context.Background()
		serialRep, err := plan.Execute(ctx, kumquat.WithMode(kumquat.Serial))
		if err != nil {
			log.Fatal(err)
		}
		want, serial := serialRep.Output, serialRep.Wall

		rep, err := plan.Execute(ctx, kumquat.WithParallelism(8))
		if err != nil {
			log.Fatal(err)
		}
		got, parallel := rep.Output, rep.Wall

		fmt.Printf("%-26s %d/%d stages parallel, %d eliminated; serial %7v, 8-way %7v (%.2fx), correct=%v\n",
			s.name, par, total, elim,
			serial.Round(time.Millisecond), parallel.Round(time.Millisecond),
			float64(serial)/float64(parallel), got == want)
		firstLine, _, _ := strings.Cut(want, "\n")
		fmt.Printf("    first row: %s\n", firstLine)
	}
}

// telemetry generates bus-telemetry CSV: timestamp,line,vehicle,reading.
func telemetry(rows int) string {
	rng := rand.New(rand.NewSource(7))
	var b strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "2020-%02d-%02dT%02d:%02d:%02d,line%d,v%03d,r%d\n",
			1+rng.Intn(12), 1+rng.Intn(28), rng.Intn(24), rng.Intn(60), rng.Intn(60),
			1+rng.Intn(20), 1+rng.Intn(40), rng.Intn(100))
	}
	return b.String()
}
