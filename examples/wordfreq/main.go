// Wordfreq reproduces the paper's §2 running example: the classic
// word-frequency pipeline
//
//	cat $IN | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn
//
// It shows the planning decisions the paper walks through — tr -cs runs
// sequentially (rerun combiner, no stream reduction), tr A-Z a-z loses its
// combiner to the Theorem 5 optimization — and compares serial,
// unoptimized-parallel and optimized-parallel execution times.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"kumquat"
)

func main() {
	env := kumquat.NewEnv()
	env.Register("in/book.txt", book(60000))
	sys := kumquat.New(env)

	plan, err := sys.Parallelize(
		`cat in/book.txt | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn` + "\n")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("planning decisions (§2 of the paper):")
	for _, st := range plan.Stages() {
		mode := "parallel"
		switch {
		case st.Sequential:
			mode = "sequential (rerun-only, no reduction)"
		case st.Eliminated:
			mode = "parallel, combiner eliminated"
		}
		fmt.Printf("  %-24s %-38s %s\n", st.Spec, mode, st.Combiner)
	}

	// Every configuration goes through the streaming Execute API; the run
	// reports carry wall time directly, so nothing is timed by hand.
	ctx := context.Background()
	run := func(mode kumquat.Mode, k int) *kumquat.RunReport {
		rep, err := plan.Execute(ctx, kumquat.WithMode(mode), kumquat.WithParallelism(k))
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	serialRep := run(kumquat.Serial, 1)
	want, serialTime := serialRep.Output, serialRep.Wall

	for _, k := range []int{2, 4, 16} {
		u := run(kumquat.Unoptimized, k)
		t := run(kumquat.Optimized, k)
		fmt.Printf("k=%-3d u_k=%8v (%.2fx)   T_k=%8v (%.2fx)   correct=%v\n",
			k, u.Wall.Round(time.Millisecond), float64(serialTime)/float64(u.Wall),
			t.Wall.Round(time.Millisecond), float64(serialTime)/float64(t.Wall),
			u.Output == want && t.Output == want)
	}

	fmt.Printf("\nserial u_1 = %v; top words:\n", serialTime.Round(time.Millisecond))
	lines := strings.SplitN(want, "\n", 6)
	fmt.Println(strings.Join(lines[:5], "\n"))
}

// book generates deterministic Zipf-flavoured text.
func book(lines int) string {
	words := []string{"the", "of", "and", "light", "sea", "wind", "to", "a",
		"stone", "river", "dark", "ship", "night", "king", "gold", "dream"}
	rng := rand.New(rand.NewSource(42))
	var b strings.Builder
	for i := 0; i < lines; i++ {
		n := 5 + rng.Intn(8)
		for j := 0; j < n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			// Zipf-ish: low indices much more likely.
			idx := rng.Intn(len(words) * (1 + rng.Intn(3)) / 3)
			if idx >= len(words) {
				idx = rng.Intn(len(words))
			}
			b.WriteString(words[idx])
		}
		b.WriteString(".\n")
	}
	return b.String()
}
