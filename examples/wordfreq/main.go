// Wordfreq reproduces the paper's §2 running example: the classic
// word-frequency pipeline
//
//	cat $IN | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn
//
// It shows the planning decisions the paper walks through — tr -cs runs
// sequentially (rerun combiner, no stream reduction), tr A-Z a-z loses its
// combiner to the Theorem 5 optimization — and compares serial,
// unoptimized-parallel and optimized-parallel execution times.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"kumquat"
)

func main() {
	env := kumquat.NewEnv()
	env.Register("in/book.txt", book(60000))
	sys := kumquat.New(env)

	plan, err := sys.Parallelize(
		`cat in/book.txt | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn` + "\n")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("planning decisions (§2 of the paper):")
	for _, st := range plan.Stages() {
		mode := "parallel"
		switch {
		case st.Sequential:
			mode = "sequential (rerun-only, no reduction)"
		case st.Eliminated:
			mode = "parallel, combiner eliminated"
		}
		fmt.Printf("  %-24s %-38s %s\n", st.Spec, mode, st.Combiner)
	}

	serialStart := time.Now()
	want, err := plan.RunSerial()
	if err != nil {
		log.Fatal(err)
	}
	serialTime := time.Since(serialStart)

	for _, k := range []int{2, 4, 16} {
		uStart := time.Now()
		uOut, err := plan.RunUnoptimized(k)
		if err != nil {
			log.Fatal(err)
		}
		uTime := time.Since(uStart)

		tStart := time.Now()
		tOut, err := plan.Run(k)
		if err != nil {
			log.Fatal(err)
		}
		tTime := time.Since(tStart)

		fmt.Printf("k=%-3d u_k=%8v (%.2fx)   T_k=%8v (%.2fx)   correct=%v\n",
			k, uTime.Round(time.Millisecond), float64(serialTime)/float64(uTime),
			tTime.Round(time.Millisecond), float64(serialTime)/float64(tTime),
			uOut == want && tOut == want)
	}

	fmt.Printf("\nserial u_1 = %v; top words:\n", serialTime.Round(time.Millisecond))
	lines := strings.SplitN(want, "\n", 6)
	fmt.Println(strings.Join(lines[:5], "\n"))
}

// book generates deterministic Zipf-flavoured text.
func book(lines int) string {
	words := []string{"the", "of", "and", "light", "sea", "wind", "to", "a",
		"stone", "river", "dark", "ship", "night", "king", "gold", "dream"}
	rng := rand.New(rand.NewSource(42))
	var b strings.Builder
	for i := 0; i < lines; i++ {
		n := 5 + rng.Intn(8)
		for j := 0; j < n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			// Zipf-ish: low indices much more likely.
			idx := rng.Intn(len(words) * (1 + rng.Intn(3)) / 3)
			if idx >= len(words) {
				idx = rng.Intn(len(words))
			}
			b.WriteString(words[idx])
		}
		b.WriteString(".\n")
	}
	return b.String()
}
