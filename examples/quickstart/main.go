// Quickstart: synthesize a combiner for one command and parallelize a tiny
// pipeline — the one-minute tour of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"kumquat"
)

func main() {
	env := kumquat.NewEnv()
	env.Register("data.txt", "pear\napple\npear\nquince\napple\npear\n")
	sys := kumquat.New(env)

	// 1. Ask KumQuat for the combiner of a single command. The synthesizer
	// treats "uniq -c" as a black box, generates input stream pairs, and
	// keeps only the DSL candidates satisfying f(x1++x2) = g(f(x1),f(x2)).
	res, err := sys.Synthesize("uniq -c")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniq -c searched %d candidates and synthesized: %s\n\n",
		res.Space.Total(), res.Combiner)

	// 2. Compile a pipeline into its data-parallel version and run it.
	plan, err := sys.Parallelize("cat data.txt | sort | uniq -c | sort -rn\n")
	if err != nil {
		log.Fatal(err)
	}
	par, total, elim := plan.Counts()
	fmt.Printf("plan: %d/%d stages parallelized, %d combiners eliminated\n", par, total, elim)
	for _, st := range plan.Stages() {
		fmt.Printf("  %-12s combiner: %s\n", st.Spec, st.Combiner)
	}

	// 3. Execute with 4-way data parallelism. Execute is the streaming
	// entry point: it takes a context, accepts io.Reader/io.Writer via
	// WithStdin/WithOutput, and returns a per-stage run report.
	rep, err := plan.Execute(context.Background(), kumquat.WithParallelism(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n4-way parallel output:\n%s", rep.Output)
	fmt.Printf("\nrun report: wall=%v in=%dB out=%dB\n", rep.Wall, rep.BytesIn, rep.BytesOut)
	for _, st := range rep.Stages {
		fmt.Printf("  %-12s chunks=%d streamed=%v %v\n", st.Spec, st.Chunks, st.Streamed, st.Wall)
	}

	serial, _ := plan.RunSerial()
	fmt.Printf("\nmatches serial output: %v\n", rep.Output == serial)
}
