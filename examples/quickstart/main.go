// Quickstart: synthesize a combiner for one command and parallelize a tiny
// pipeline — the one-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"kumquat"
)

func main() {
	env := kumquat.NewEnv()
	env.Register("data.txt", "pear\napple\npear\nquince\napple\npear\n")
	sys := kumquat.New(env)

	// 1. Ask KumQuat for the combiner of a single command. The synthesizer
	// treats "uniq -c" as a black box, generates input stream pairs, and
	// keeps only the DSL candidates satisfying f(x1++x2) = g(f(x1),f(x2)).
	res, err := sys.Synthesize("uniq -c")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniq -c searched %d candidates and synthesized: %s\n\n",
		res.Space.Total(), res.Combiner)

	// 2. Compile a pipeline into its data-parallel version and run it.
	plan, err := sys.Parallelize("cat data.txt | sort | uniq -c | sort -rn\n")
	if err != nil {
		log.Fatal(err)
	}
	par, total, elim := plan.Counts()
	fmt.Printf("plan: %d/%d stages parallelized, %d combiners eliminated\n", par, total, elim)
	for _, st := range plan.Stages() {
		fmt.Printf("  %-12s combiner: %s\n", st.Spec, st.Combiner)
	}

	out, err := plan.Run(4) // 4-way data parallelism
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n4-way parallel output:\n%s", out)

	serial, _ := plan.RunSerial()
	fmt.Printf("\nmatches serial output: %v\n", out == serial)
}
