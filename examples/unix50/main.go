// Unix50 runs a selection of the Bell Labs Unix50-game pipelines — the
// puzzle scripts the paper uses as its fourth benchmark suite — and prints
// each plan alongside its parallel speedup and answer.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"kumquat"
)

var puzzles = []struct{ title, src string }{
	{"4.4: histogram by piece",
		`cat in/chess.txt | tr ' ' '\n' | grep 'x' | grep '\.' | cut -d '.' -f 2 | grep '[KQRBN]' | cut -c 1-1 | sort | uniq -c | sort -rn`},
	{"7.1: number of versions",
		`cat in/history.tsv | cut -f 1 | grep 'AT&T' | wc -l`},
	{"8.4: longest words w/o hyphens",
		`cat in/text.txt | tr -c "[a-z][A-Z]" '\n' | sort -u | awk "length >= 16"`},
	{"1.3: sort top first names",
		`cat in/names.txt | cut -d ' ' -f 1 | sort | uniq -c | sort -rn`},
}

func main() {
	env := kumquat.NewEnv()
	registerInputs(env)
	sys := kumquat.New(env)

	for _, p := range puzzles {
		plan, err := sys.Parallelize(p.src + "\n")
		if err != nil {
			log.Fatalf("%s: %v", p.title, err)
		}
		par, total, elim := plan.Counts()

		ctx := context.Background()
		serialRep, err := plan.Execute(ctx, kumquat.WithMode(kumquat.Serial))
		if err != nil {
			log.Fatal(err)
		}
		want, serial := serialRep.Output, serialRep.Wall
		rep, err := plan.Execute(ctx, kumquat.WithParallelism(8))
		if err != nil {
			log.Fatal(err)
		}
		got, ptime := rep.Output, rep.Wall

		answer, _, _ := strings.Cut(got, "\n")
		fmt.Printf("%-32s %d/%d parallel (%d eliminated)  serial %6v  8-way %6v (%.2fx)  ok=%v\n",
			p.title, par, total, elim,
			serial.Round(time.Millisecond), ptime.Round(time.Millisecond),
			float64(serial)/float64(ptime), got == want)
		fmt.Printf("    answer: %s\n", answer)
	}
}

func registerInputs(env *kumquat.Env) {
	rng := rand.New(rand.NewSource(11))
	var chess strings.Builder
	pieces := []string{"K", "Q", "R", "B", "N", ""}
	move := func() string {
		s := pieces[rng.Intn(len(pieces))]
		if rng.Intn(3) == 0 {
			s += "x"
		}
		return s + fmt.Sprintf("%c%d", 'a'+rng.Intn(8), 1+rng.Intn(8))
	}
	for i := 0; i < 40000; i++ {
		for m := 1; m <= 3; m++ {
			if m > 1 {
				chess.WriteByte(' ')
			}
			fmt.Fprintf(&chess, "%d.%s %s", m, move(), move())
		}
		chess.WriteByte('\n')
	}
	env.Register("in/chess.txt", chess.String())

	var hist strings.Builder
	orgs := []string{"AT&T Bell Labs", "Berkeley CSRG", "MIT"}
	for i := 0; i < 50000; i++ {
		fmt.Fprintf(&hist, "%s\tpdp%d\tv%d\t%d\n",
			orgs[rng.Intn(len(orgs))], 7+rng.Intn(5), 1+rng.Intn(10), 1969+rng.Intn(25))
	}
	env.Register("in/history.tsv", hist.String())

	words := []string{"the", "internationalization", "light", "sea",
		"incomprehensibilities", "wind", "counterrevolutionaries", "dark"}
	var text strings.Builder
	for i := 0; i < 40000; i++ {
		for j := 0; j < 6; j++ {
			if j > 0 {
				text.WriteByte(' ')
			}
			text.WriteString(words[rng.Intn(len(words))])
		}
		text.WriteByte('\n')
	}
	env.Register("in/text.txt", text.String())

	first := []string{"Ken", "Dennis", "Brian", "Rob", "Doug"}
	last := []string{"Thompson", "Ritchie", "Kernighan", "Pike", "McIlroy"}
	var names strings.Builder
	for i := 0; i < 60000; i++ {
		fmt.Fprintf(&names, "%s %s\n", first[rng.Intn(len(first))], last[rng.Intn(len(last))])
	}
	env.Register("in/names.txt", names.String())
}
