// Package kumquat is the public API of the KumQuat reproduction: automatic
// synthesis of combiners for data-parallel execution of Unix commands and
// pipelines (Shen, Rinard, Vasilakis; PPoPP 2022).
//
// The typical workflow mirrors Figure 2 of the paper:
//
//	env := kumquat.NewEnv()
//	env.Register("in.txt", data)
//	sys := kumquat.New(env)
//
//	// Synthesize a combiner for one command:
//	res, err := sys.Synthesize("uniq -c")
//	fmt.Println(res.Combiner) // (stitch2 ' ' add first a b), ...
//
//	// Or parallelize a whole pipeline:
//	plan, err := sys.Parallelize("cat in.txt | tr -cs A-Za-z '\n' | sort | uniq -c")
//	out, err := plan.Run(16)
//
// Commands are the pure-Go substrate in internal/unix; they behave like
// their GNU counterparts for the flag combinations the paper's benchmarks
// use and are exercised strictly as black boxes by the synthesizer.
package kumquat

import (
	"kumquat/internal/dsl"
	"kumquat/internal/pipeline"
	"kumquat/internal/synth"
	"kumquat/internal/unix"
)

// Env is the execution environment: the simulated file system commands
// read (xargs, comm, cat with file operands) and pipelines use for input
// files and intermediate redirects.
type Env struct {
	u *unix.Env
}

// NewEnv creates an environment with the default synthetic file corpus
// (used as the legal-file-name dictionary during synthesis).
func NewEnv() *Env { return &Env{u: unix.DefaultEnv()} }

// Register adds or replaces a file's contents.
func (e *Env) Register(name, content string) { e.u.FS.Register(name, content) }

// Read returns a registered file's contents.
func (e *Env) Read(name string) (string, error) { return e.u.FS.Read(name) }

// Options re-exports the synthesis tuning knobs.
type Options = synth.Options

// Result is a command's synthesis outcome (search space, plausible
// combiners, timing) — one row of the paper's Table 10.
type Result = synth.Result

// System owns a shared synthesizer with its per-command combiner cache.
type System struct {
	env *Env
	syn *synth.Synthesizer
}

// New creates a System with default options.
func New(env *Env) *System { return NewWithOptions(env, Options{Seed: 1}) }

// NewWithOptions creates a System with explicit synthesis options.
func NewWithOptions(env *Env, opts Options) *System {
	if env == nil {
		env = NewEnv()
	}
	return &System{env: env, syn: synth.New(env.u, opts)}
}

// Env returns the system's environment.
func (s *System) Env() *Env { return s.env }

// RunCommand executes a single command spec on an input stream — the
// black-box f the synthesizer observes.
func (s *System) RunCommand(spec, input string) (string, error) {
	cmd, err := unix.Parse(spec, s.env.u)
	if err != nil {
		return "", err
	}
	return cmd.Run(input)
}

// Combine applies a combiner, written in the DSL's textual form (e.g.
// "(stitch2 ' ' add first a b)" or "merge('-rn')"), to two parallel outputs
// of the given command. The command binds rerun's f and merge's comparator.
func (s *System) Combine(combiner, cmdSpec, y1, y2 string) (string, error) {
	cand, err := dsl.ParseCandidate(combiner)
	if err != nil {
		return "", err
	}
	cmd, err := unix.Parse(cmdSpec, s.env.u)
	if err != nil {
		return "", err
	}
	denv := &dsl.Env{RunF: cmd.Run}
	if sc, ok := cmd.(*unix.SortCmd); ok {
		denv.Merge = sc
	} else if def, err := unix.Parse("sort", s.env.u); err == nil {
		denv.Merge = def.(*unix.SortCmd)
	}
	return cand.Eval(denv, y1, y2)
}

// Synthesize infers a combiner for one command (Algorithm 1 + Algorithm 2).
// The returned Result reports the search space, surviving candidates and
// the composite combiner; err is non-nil when no combiner exists for the
// command (the paper's Table 9 cases).
func (s *System) Synthesize(spec string) (*Result, error) {
	return s.syn.SynthesizeSpec(spec)
}

// Plan is a compiled data-parallel pipeline with its executors.
type Plan struct {
	env   *Env
	plans []*pipeline.Plan
	outs  []string // output redirect targets per pipeline ("" = stdout)
}

// Parallelize parses a shell script (one or more pipelines, VAR=${VAR:-..}
// assignments, comments), synthesizes combiners for every stage, and
// applies the §3.5 optimizations (combiner elimination, sequential rerun
// stages).
func (s *System) Parallelize(script string) (*Plan, error) {
	parsed, err := pipeline.ParseScript(script, nil)
	if err != nil {
		return nil, err
	}
	p := &Plan{env: s.env}
	for _, pl := range parsed.Pipelines {
		plan, err := pipeline.Compile(pl, s.syn)
		if err != nil {
			return nil, err
		}
		p.plans = append(p.plans, plan)
		p.outs = append(p.outs, pl.OutputFile)
	}
	return p, nil
}

// Counts reports the planning outcome across the script: parallelized
// stages, total stages, and eliminated combiners (the paper's Table 3 row).
func (p *Plan) Counts() (parallelized, total, eliminated int) {
	for _, plan := range p.plans {
		par, tot, elim := plan.Counts()
		parallelized += par
		total += tot
		eliminated += elim
	}
	return
}

// Stages describes each stage's planning verdict, in order.
func (p *Plan) Stages() []StageInfo {
	var out []StageInfo
	for _, plan := range p.plans {
		for _, sp := range plan.Stages {
			info := StageInfo{
				Spec:       sp.Spec,
				Parallel:   sp.Parallel,
				Sequential: sp.Sequential,
				Eliminated: sp.Eliminated,
			}
			if sp.Synth != nil && sp.Synth.Err == nil {
				info.Combiner = sp.Synth.Combiner.String()
			}
			out = append(out, info)
		}
	}
	return out
}

// StageInfo is one stage's planning verdict.
type StageInfo struct {
	Spec       string
	Combiner   string // composite combiner display ("" when none)
	Parallel   bool
	Sequential bool
	Eliminated bool
}

// run executes all pipelines in order with the given per-pipeline runner,
// wiring output redirects through the environment.
func (p *Plan) run(exec func(*pipeline.Plan) (string, error)) (string, error) {
	var final string
	for i, plan := range p.plans {
		out, err := exec(plan)
		if err != nil {
			return "", err
		}
		if p.outs[i] != "" {
			p.env.Register(p.outs[i], out)
		} else {
			final += out
		}
	}
	return final, nil
}

// Run executes the optimized data-parallel pipeline with k-way parallelism
// (the paper's T_k configuration).
func (p *Plan) Run(k int) (string, error) {
	return p.run(func(pl *pipeline.Plan) (string, error) {
		return pl.RunOptimized(p.env.u, "", k)
	})
}

// RunUnoptimized executes with a combiner after every stage (u_k).
func (p *Plan) RunUnoptimized(k int) (string, error) {
	return p.run(func(pl *pipeline.Plan) (string, error) {
		return pl.RunParallel(p.env.u, "", k)
	})
}

// RunSerial executes every stage to completion in order (u_1).
func (p *Plan) RunSerial() (string, error) {
	return p.run(func(pl *pipeline.Plan) (string, error) {
		return pl.RunSerial(p.env.u, "")
	})
}

// RunPipelined executes the original pipeline with Unix-style stage
// overlap (the T_orig configuration).
func (p *Plan) RunPipelined() (string, error) {
	return p.run(func(pl *pipeline.Plan) (string, error) {
		return pl.RunPipelined(p.env.u, "")
	})
}
