// Package kumquat is the public API of the KumQuat reproduction: automatic
// synthesis of combiners for data-parallel execution of Unix commands and
// pipelines (Shen, Rinard, Vasilakis; PPoPP 2022).
//
// The typical workflow mirrors Figure 2 of the paper:
//
//	env := kumquat.NewEnv()
//	env.Register("in.txt", data)
//	sys := kumquat.New(env)
//
//	// Synthesize a combiner for one command:
//	res, err := sys.Synthesize("uniq -c")
//	fmt.Println(res.Combiner) // (stitch2 ' ' add first a b), ...
//
//	// Or parallelize a whole pipeline:
//	plan, err := sys.Parallelize("cat in.txt | tr -cs A-Za-z '\n' | sort | uniq -c")
//	out, err := plan.Run(16)
//
// Commands are the pure-Go substrate in internal/unix; they behave like
// their GNU counterparts for the flag combinations the paper's benchmarks
// use and are exercised strictly as black boxes by the synthesizer.
package kumquat

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"kumquat/internal/dsl"
	"kumquat/internal/obs"
	"kumquat/internal/pipeline"
	"kumquat/internal/synth"
	"kumquat/internal/synth/cache"
	"kumquat/internal/textio"
	"kumquat/internal/unix"
)

// Env is the execution environment: the simulated file system commands
// read (xargs, comm, cat with file operands) and pipelines use for input
// files and intermediate redirects.
type Env struct {
	u *unix.Env
}

// NewEnv creates an environment with the default synthetic file corpus
// (used as the legal-file-name dictionary during synthesis).
func NewEnv() *Env { return &Env{u: unix.DefaultEnv()} }

// Register adds or replaces a file's contents.
func (e *Env) Register(name, content string) { e.u.FS.Register(name, content) }

// RegisterFile maps a host file into the environment without copying it:
// the file is mmap'd where the platform supports it (read into a buffer
// otherwise) and registered under name, so chunking it is pointer
// arithmetic over the mapping. The file must not be modified while the
// environment is alive (see textio.Mapping's safety contract); Close
// releases every mapping.
func (e *Env) RegisterFile(name, path string) error {
	m, err := textio.MapFile(path)
	if err != nil {
		return err
	}
	e.u.FS.RegisterMapping(name, m)
	return nil
}

// Read returns a registered file's contents.
func (e *Env) Read(name string) (string, error) { return e.u.FS.Read(name) }

// ReadSeq returns a registered file's shared line index (computed once
// at ingest; see unix.FS.ReadSeq).
func (e *Env) ReadSeq(name string) (textio.LineSeq, error) { return e.u.FS.ReadSeq(name) }

// Close releases resources the environment owns — today, the memory
// mappings behind RegisterFile. Call only once no output or view derived
// from a mapped file will be used again.
func (e *Env) Close() error { return e.u.FS.Close() }

// Options re-exports the synthesis tuning knobs, including the engine's
// Workers (parallel filtering pool), CacheSize (in-memory combiner LRU)
// and CacheDir (on-disk combiner store) fields.
type Options = synth.Options

// Result is a command's synthesis outcome (search space, plausible
// combiners, timing) — one row of the paper's Table 10.
type Result = synth.Result

// SynthCacheStats re-exports the engine's cache counters: memory hits,
// disk hits, and misses (full synthesis runs).
type SynthCacheStats = cache.Stats

// CacheTier re-exports the engine's per-call cache-tier verdict
// (TierMiss, TierMemory, TierDisk); see SynthesizeTier.
type CacheTier = cache.Tier

// The cache-tier values a SynthesizeTier call can report.
const (
	// TierMiss means a full synthesis ran.
	TierMiss = cache.TierMiss
	// TierMemory means the spec memo or in-memory LRU served the call.
	TierMemory = cache.TierMemory
	// TierDisk means the on-disk combiner store served the call.
	TierDisk = cache.TierDisk
)

// System owns a shared synthesis engine with its combiner caches.
type System struct {
	env *Env
	syn *synth.Engine
}

// New creates a System with default options.
func New(env *Env) *System { return NewWithOptions(env, Options{Seed: 1}) }

// NewWithOptions creates a System with explicit synthesis options.
func NewWithOptions(env *Env, opts Options) *System {
	if env == nil {
		env = NewEnv()
	}
	return &System{env: env, syn: synth.New(env.u, opts)}
}

// Env returns the system's environment.
func (s *System) Env() *Env { return s.env }

// RunCommand executes a single command spec on an input stream — the
// black-box f the synthesizer observes.
func (s *System) RunCommand(spec, input string) (string, error) {
	cmd, err := unix.Parse(spec, s.env.u)
	if err != nil {
		return "", err
	}
	return cmd.Run(input)
}

// Combine applies a combiner, written in the DSL's textual form (e.g.
// "(stitch2 ' ' add first a b)" or "merge('-rn')"), to two parallel outputs
// of the given command. The command binds rerun's f and merge's comparator.
func (s *System) Combine(combiner, cmdSpec, y1, y2 string) (string, error) {
	cand, err := dsl.ParseCandidate(combiner)
	if err != nil {
		return "", err
	}
	cmd, err := unix.Parse(cmdSpec, s.env.u)
	if err != nil {
		return "", err
	}
	denv := &dsl.Env{RunF: cmd.Run}
	if sc, ok := cmd.(*unix.SortCmd); ok {
		denv.Merge = sc
	} else if def, err := unix.Parse("sort", s.env.u); err == nil {
		denv.Merge = def.(*unix.SortCmd)
	}
	return cand.Eval(denv, y1, y2)
}

// Synthesize infers a combiner for one command (Algorithm 1 + Algorithm 2).
// The returned Result reports the search space, surviving candidates and
// the composite combiner; err is non-nil when no combiner exists for the
// command (the paper's Table 9 cases).
func (s *System) Synthesize(spec string) (*Result, error) {
	return s.syn.Synthesize(context.Background(), spec)
}

// SynthesizeContext is Synthesize with cancellation: a cancelled ctx
// aborts synthesis mid-round and returns the best-so-far Result with its
// Err set to ctx.Err().
func (s *System) SynthesizeContext(ctx context.Context, spec string) (*Result, error) {
	return s.syn.Synthesize(ctx, spec)
}

// SynthesizeTier is SynthesizeContext plus an exact attribution of the
// cache tier that served the call (TierMemory, TierDisk or TierMiss).
// The verdict is decided at the engine's lookup site, so it stays exact
// when other Synthesize/Parallelize calls run concurrently — the
// property kumquatd's per-request "cached" field relies on.
func (s *System) SynthesizeTier(ctx context.Context, spec string) (*Result, CacheTier, error) {
	return s.syn.SynthesizeTier(ctx, spec)
}

// SynthCacheStats reports the system's cumulative combiner-cache
// activity across all Synthesize and Parallelize calls.
func (s *System) SynthCacheStats() SynthCacheStats { return s.syn.Stats() }

// Plan is a compiled data-parallel pipeline with its executors.
type Plan struct {
	env   *Env
	plans []*pipeline.Plan
	outs  []string // output redirect targets per pipeline ("" = stdout)
	// synthStats is the combiner-cache activity attributable to this
	// plan's compilation, surfaced in RunReport. Each stage-synthesis
	// call is attributed at the engine's lookup site, so the numbers are
	// exact even when other Synthesize/Parallelize calls on the same
	// System overlap the compilation.
	synthStats SynthCacheStats
}

// Parallelize parses a shell script (one or more pipelines, VAR=${VAR:-..}
// assignments, comments), synthesizes combiners for every stage, and
// applies the §3.5 optimizations (combiner elimination, sequential rerun
// stages). Combiners for repeated stages are resolved from the system's
// cache; the per-compilation hit/miss counts are carried into the
// RunReport of every Execute call on the returned Plan.
func (s *System) Parallelize(script string) (*Plan, error) {
	return s.ParallelizeContext(context.Background(), script)
}

// ParallelizeContext is Parallelize with cancellation: a cancelled ctx
// aborts the in-flight stage synthesis mid-round.
func (s *System) ParallelizeContext(ctx context.Context, script string) (*Plan, error) {
	return s.ParallelizeInEnv(ctx, s.env, script)
}

// ParallelizeInEnv compiles a script against a caller-owned environment
// while synthesizing through the system's shared engine, so its warm
// combiner caches serve every compilation. This is the multi-user entry
// point kumquatd uses: each request gets a private Env (its input files
// and `> FILE` redirects stay isolated), yet repeated stages across
// requests still resolve in O(lookup).
//
// Stage synthesis itself observes commands in the engine's own
// environment, so commands that read registered files *during synthesis*
// (xargs-style file-name probes) see the system env, not env. Execution
// — input files, mid-pipeline reads, redirect writes — uses env alone.
// A nil env compiles against a fresh default environment.
func (s *System) ParallelizeInEnv(ctx context.Context, env *Env, script string) (*Plan, error) {
	if env == nil {
		env = NewEnv()
	}
	ctx, span := obs.StartSpan(ctx, "plan")
	defer span.End()
	parsed, err := pipeline.ParseScript(script, nil)
	if err != nil {
		return nil, err
	}
	span.AttrInt("pipelines", int64(len(parsed.Pipelines)))
	p := &Plan{env: env}
	for _, pl := range parsed.Pipelines {
		plan, err := pipeline.CompileContext(ctx, pl, s.syn)
		if err != nil {
			return nil, err
		}
		p.plans = append(p.plans, plan)
		p.outs = append(p.outs, pl.OutputFile)
		p.synthStats = p.synthStats.Add(plan.SynthStats)
	}
	return p, nil
}

// Counts reports the planning outcome across the script: parallelized
// stages, total stages, and eliminated combiners (the paper's Table 3 row).
func (p *Plan) Counts() (parallelized, total, eliminated int) {
	for _, plan := range p.plans {
		par, tot, elim := plan.Counts()
		parallelized += par
		total += tot
		eliminated += elim
	}
	return
}

// SynthCache reports the combiner-cache activity recorded while the plan
// was compiled (the same figures RunReport.SynthCache carries).
func (p *Plan) SynthCache() SynthCacheStats { return p.synthStats }

// Rewrites counts, per rule name, the dataflow-optimizer rewrites baked
// into the compiled plan across all its pipelines (fuse-streamers,
// elide-combine, push-sort-merge). They apply when the plan executes in
// Optimized mode with fusion on; the conformance plane aggregates these
// counters to prove each rewrite rule is exercised.
func (p *Plan) Rewrites() map[string]int {
	fired := map[string]int{}
	for _, plan := range p.plans {
		if plan.Program == nil {
			continue
		}
		for rule, n := range plan.Program.Fired {
			fired[string(rule)] += n
		}
	}
	return fired
}

// Inputs returns each pipeline's input source, in script order: the
// `cat FILE` / `< FILE` file name, or "" for a pipeline that reads
// standard input. kumquatd uses this to decide whether a streamed
// request body binds to stdin or to the first pipeline's file source.
func (p *Plan) Inputs() []string {
	inputs := make([]string, len(p.plans))
	for i, plan := range p.plans {
		inputs[i] = plan.InputFile
	}
	return inputs
}

// PipelinePlans exposes the compiled per-pipeline plans for execution
// planes outside this package — kumquatd's cluster coordinator walks the
// stages itself to dispatch shards to remote workers. The slice is
// shared with the Plan, not copied.
func (p *Plan) PipelinePlans() []*pipeline.Plan { return p.plans }

// OutputFiles returns each pipeline's `> FILE` redirect target, in
// script order ("" = the pipeline writes to the output sink). Paired
// with PipelinePlans for out-of-package execution planes.
func (p *Plan) OutputFiles() []string {
	out := make([]string, len(p.outs))
	copy(out, p.outs)
	return out
}

// Stages describes each stage's planning verdict, in order.
func (p *Plan) Stages() []StageInfo {
	var out []StageInfo
	for _, plan := range p.plans {
		for _, sp := range plan.Stages {
			out = append(out, stageInfo(sp))
		}
	}
	return out
}

// stageInfo converts a compiled stage's planning verdict to its public form.
func stageInfo(sp *pipeline.StagePlan) StageInfo {
	info := StageInfo{
		Spec:       sp.Spec,
		Parallel:   sp.Parallel,
		Sequential: sp.Sequential,
		Eliminated: sp.Eliminated,
	}
	if sp.Synth != nil && sp.Synth.Err == nil {
		info.Combiner = sp.Synth.Combiner.String()
	}
	return info
}

// StageInfo is one stage's planning verdict.
type StageInfo struct {
	Spec       string
	Combiner   string // composite combiner display ("" when none)
	Parallel   bool
	Sequential bool
	Eliminated bool
}

// Mode selects an execution configuration for Plan.Execute; the four
// values mirror the paper's measurement setups.
type Mode int

const (
	// Optimized is T_k: the optimized data-parallel pipeline with combiner
	// elimination and streaming stage overlap.
	Optimized Mode = iota
	// Unoptimized is u_k: a combiner after every parallel stage, with a
	// barrier at every stage boundary.
	Unoptimized
	// Serial is u_1: every stage runs to completion in order.
	Serial
	// Pipelined is T_orig: the original pipeline with Unix-style stage
	// overlap and no data parallelism.
	Pipelined
)

func (m Mode) String() string {
	pm, err := m.internal()
	if err != nil {
		return fmt.Sprintf("Mode(%d)", int(m))
	}
	return pm.String()
}

// ParseMode parses a mode name ("optimized", "unoptimized", "serial",
// "pipelined") — the inverse of Mode.String, for CLI flags.
func ParseMode(s string) (Mode, error) {
	for _, m := range []Mode{Optimized, Unoptimized, Serial, Pipelined} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("kumquat: unknown mode %q (want optimized, unoptimized, serial or pipelined)", s)
}

func (m Mode) internal() (pipeline.Mode, error) {
	switch m {
	case Optimized:
		return pipeline.ModeOptimized, nil
	case Unoptimized:
		return pipeline.ModeUnoptimized, nil
	case Serial:
		return pipeline.ModeSerial, nil
	case Pipelined:
		return pipeline.ModePipelined, nil
	default:
		return 0, fmt.Errorf("kumquat: unknown execution mode Mode(%d)", int(m))
	}
}

// ExecOption configures Plan.Execute.
type ExecOption func(*execConfig)

type execConfig struct {
	k              int
	combineWorkers int
	mode           Mode
	stdin          io.Reader
	out            io.Writer
	fuse           bool
}

// WithParallelism sets the data-parallelism degree k (default:
// runtime.GOMAXPROCS(0)).
func WithParallelism(k int) ExecOption {
	return func(c *execConfig) { c.k = k }
}

// WithCombineWorkers bounds the concurrency of the combine plane: the
// tree reduction that merges each parallel stage's k substreams
// (default: the executor's chunk pool size, i.e. min(k, GOMAXPROCS)).
// The combined output is byte-identical at every worker count; the knob
// trades combine wall time only.
func WithCombineWorkers(n int) ExecOption {
	return func(c *execConfig) { c.combineWorkers = n }
}

// WithMode selects the execution configuration (default: Optimized).
func WithMode(m Mode) ExecOption {
	return func(c *execConfig) { c.mode = m }
}

// WithFuse toggles the dataflow optimizer's fused execution for Optimized
// runs (default: on). When on, the plan's optimized region program runs
// fused regions chunk-parallel end to end — adjacent line-streaming stages
// execute as one per-chunk pass, combines are elided into order-insensitive
// consumers, and sort combines push into downstream k-way merge readers;
// RunReport.Rewrites names what fired. Off reproduces the legacy
// stage-at-a-time optimized executor (the -fuse=off ablation).
func WithFuse(on bool) ExecOption {
	return func(c *execConfig) { c.fuse = on }
}

// WithStdin supplies the standard-input stream for pipelines that read
// standard input (no `cat FILE` source). The reader is consumed
// incrementally: streaming stages pull from it on demand rather than
// materializing it. Default: empty input.
func WithStdin(r io.Reader) ExecOption {
	return func(c *execConfig) { c.stdin = r }
}

// WithOutput directs the final output stream to w instead of buffering it
// into RunReport.Output. Streaming stages write to w incrementally, so a
// pipeline of line-streaming stages runs in bounded memory end to end.
func WithOutput(w io.Writer) ExecOption {
	return func(c *execConfig) { c.out = w }
}

// StageReport is one stage's planning verdict together with its execution
// measurements from a single Execute call.
type StageReport struct {
	StageInfo
	// Pipeline is the index of the script pipeline the stage belongs to.
	Pipeline int
	// Wall is the stage's wall-clock activity time. Streamed stages
	// overlap, so stage walls can sum to more than the report's Wall.
	Wall time.Duration
	// CombineWall is the share of Wall spent recombining the stage's k
	// chunk outputs on the combine plane (zero when the stage was not
	// chunked or its combiner was eliminated).
	CombineWall time.Duration
	// BytesIn and BytesOut measure the stage's stream volume.
	BytesIn  int64
	BytesOut int64
	// Chunks is the number of parallel instances the stage ran as
	// (0 when the stage was not chunked).
	Chunks int
	// Streamed marks stages that processed their input incrementally.
	Streamed bool
}

// RegionReport describes one optimizer region of a fused run: the stages
// it covered, the rewrites that shaped it, and region-level metrics. In a
// fused region the per-stage combine no longer exists — CombineWall is
// reported here, per region, instead.
type RegionReport struct {
	// Pipeline is the index of the script pipeline the region belongs to.
	Pipeline int
	// Stages holds the indices (within the pipeline) of the member stages.
	Stages []int
	// Fused marks multi-stage regions run as one composed per-chunk pass.
	Fused bool
	// Exit names how the region's output left it (combine, split, concat,
	// merge-stream).
	Exit string
	// Rules names the optimizer rewrites that fired on the region.
	Rules []string
	// Wall is the region's wall-clock activity time; CombineWall is the
	// share spent recombining its chunk outputs.
	Wall        time.Duration
	CombineWall time.Duration
	// BytesIn and BytesOut measure the region's stream volume.
	BytesIn  int64
	BytesOut int64
	// Chunks is the number of parallel instances the region ran as.
	Chunks int
	// Streamed marks regions that consumed a lazily merged stream.
	Streamed bool
}

// RunReport describes one Execute call: total wall time, bytes read from
// the sources and written to the sink, and per-stage verdicts and metrics.
type RunReport struct {
	// Mode and Parallelism echo the execution configuration.
	Mode        Mode
	Parallelism int
	// Wall is the end-to-end wall-clock time of the run.
	Wall time.Duration
	// BytesIn is the total stream volume entering the first stage of each
	// pipeline; BytesOut is the total written to the output sink
	// (redirected pipelines count toward neither).
	BytesIn  int64
	BytesOut int64
	// Stages holds one entry per stage across all pipelines, in order.
	Stages []StageReport
	// SynthCache is the combiner-cache activity recorded while this
	// plan was compiled: how many stage combiners were served from the
	// cache (memory or disk) versus synthesized from scratch. Each call
	// is attributed at the engine's lookup site, so the counts stay
	// exact under concurrent use of the same System.
	SynthCache SynthCacheStats
	// Fused reports that the graph-walking fused executor ran (Optimized
	// mode with fusion on and a materialized source).
	Fused bool
	// Rewrites counts, per rule name, the dataflow rewrites the fused
	// run applied (fuse-streamers, elide-combine, push-sort-merge); nil
	// when the fused executor did not run.
	Rewrites map[string]int
	// Regions holds one entry per optimizer region of a fused run, in
	// order across pipelines; nil when the fused executor did not run.
	Regions []RegionReport
	// Output is the captured output stream when no WithOutput sink was
	// given; empty otherwise.
	Output string
}

// Execute runs the compiled plan. It is the primary execution entry point:
// input and output are streams (WithStdin/WithOutput), ctx cancels the run
// promptly in every mode, and the returned RunReport carries per-stage
// wall times, byte counts, chunk counts and planning verdicts.
//
//	rep, err := plan.Execute(ctx,
//	    kumquat.WithParallelism(16),
//	    kumquat.WithStdin(os.Stdin),
//	    kumquat.WithOutput(os.Stdout))
//
// The legacy Run/RunUnoptimized/RunSerial/RunPipelined methods are thin
// wrappers over Execute with a buffered output sink.
func (p *Plan) Execute(ctx context.Context, opts ...ExecOption) (*RunReport, error) {
	cfg := execConfig{k: runtime.GOMAXPROCS(0), mode: Optimized, fuse: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.k < 1 {
		cfg.k = 1
	}
	mode, err := cfg.mode.internal()
	if err != nil {
		return nil, err
	}
	// Serial and pipelined modes run one instance per stage; reporting
	// the requested k would overstate what ran.
	if cfg.mode == Serial || cfg.mode == Pipelined {
		cfg.k = 1
	}
	var captured *strings.Builder
	sink := cfg.out
	if sink == nil {
		captured = &strings.Builder{}
		sink = captured
	}
	ctx, span := obs.StartSpan(ctx, "run")
	if span.Enabled() {
		span.Attr("mode", cfg.mode.String())
		span.AttrInt("k", int64(cfg.k))
	}
	defer span.End()
	rep := &RunReport{Mode: cfg.mode, Parallelism: cfg.k, SynthCache: p.synthStats}
	counted := &countingWriter{w: sink}
	start := time.Now()
	for i, plan := range p.plans {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pctx, psp := obs.StartSpan(ctx, "pipeline")
		psp.AttrInt("index", int64(i))
		var target io.Writer = counted
		var redirect *strings.Builder
		if p.outs[i] != "" {
			redirect = &strings.Builder{}
			target = redirect
		}
		var info pipeline.RunInfo
		ms, err := plan.Execute(pctx, p.env.u, cfg.stdin, target, mode, cfg.k,
			pipeline.WithCombineWorkers(cfg.combineWorkers),
			pipeline.WithFuse(cfg.fuse),
			pipeline.WithRunInfo(&info))
		if err != nil {
			psp.End()
			return nil, err
		}
		if info.Fused {
			rep.Fused = true
			if rep.Rewrites == nil {
				rep.Rewrites = make(map[string]int, len(info.Rewrites))
			}
			for rule, n := range info.Rewrites {
				rep.Rewrites[rule] += n
			}
			for _, rm := range info.Regions {
				rep.Regions = append(rep.Regions, RegionReport{
					Pipeline:    i,
					Stages:      rm.Stages,
					Fused:       rm.Fused,
					Exit:        rm.Exit,
					Rules:       rm.Rules,
					Wall:        rm.Wall,
					CombineWall: rm.CombineWall,
					BytesIn:     rm.BytesIn,
					BytesOut:    rm.BytesOut,
					Chunks:      rm.Chunks,
					Streamed:    rm.Streamed,
				})
			}
		}
		for j, m := range ms {
			sr := StageReport{
				Pipeline:    i,
				Wall:        m.Wall,
				CombineWall: m.CombineWall,
				BytesIn:     m.BytesIn,
				BytesOut:    m.BytesOut,
				Chunks:      m.Chunks,
				Streamed:    m.Streamed,
			}
			if j < len(plan.Stages) {
				sr.StageInfo = stageInfo(plan.Stages[j])
			}
			// Redirected pipelines count toward neither total (their
			// output never reaches the sink either).
			if j == 0 && redirect == nil {
				rep.BytesIn += m.BytesIn
			}
			rep.Stages = append(rep.Stages, sr)
		}
		if redirect != nil {
			p.env.Register(p.outs[i], redirect.String())
		}
		psp.End()
	}
	rep.Wall = time.Since(start)
	rep.BytesOut = counted.n
	if captured != nil {
		rep.Output = captured.String()
	}
	return rep, nil
}

// countingWriter tallies bytes written to the final sink.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// runCompat executes through Execute with a buffered sink and returns the
// captured output — the shared body of the legacy string-based entry
// points.
func (p *Plan) runCompat(mode Mode, k int) (string, error) {
	rep, err := p.Execute(context.Background(), WithMode(mode), WithParallelism(k))
	if err != nil {
		return "", err
	}
	return rep.Output, nil
}

// Run executes the optimized data-parallel pipeline with k-way parallelism
// (the paper's T_k configuration).
func (p *Plan) Run(k int) (string, error) { return p.runCompat(Optimized, k) }

// RunUnoptimized executes with a combiner after every stage (u_k).
func (p *Plan) RunUnoptimized(k int) (string, error) { return p.runCompat(Unoptimized, k) }

// RunSerial executes every stage to completion in order (u_1).
func (p *Plan) RunSerial() (string, error) { return p.runCompat(Serial, 1) }

// RunPipelined executes the original pipeline with Unix-style stage
// overlap (the T_orig configuration).
func (p *Plan) RunPipelined() (string, error) { return p.runCompat(Pipelined, 1) }
