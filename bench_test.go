// Benchmarks regenerating the paper's evaluation, one per table/figure
// (see DESIGN.md's per-experiment index), plus the ablation benches for the
// design choices DESIGN.md calls out. Absolute times depend on the host;
// the shapes to compare against the paper are the per-k scaling (Tables
// 5/6), the optimized-vs-unoptimized ordering, and the synthesis outcomes.
package kumquat

import (
	"context"
	"fmt"
	"testing"

	"kumquat/internal/bench"
	"kumquat/internal/dsl"
	"kumquat/internal/pipeline"
	"kumquat/internal/shape"
	"kumquat/internal/synth"
	"kumquat/internal/textio"
	"kumquat/internal/unix"
)

// benchScale keeps full-catalog runs affordable under `go test -bench`.
const benchScale = 1500

// table1Scripts are the paper's Table 1 selection: the two longest-running
// scripts per suite.
var table1Scripts = map[string]bool{
	"2.sh": true, "3.sh": true, // analytics-mts
	"set-diff.sh": true, "wf.sh": true, // oneliners
	"4_3b.sh": true, "8.2_2.sh": true, // poets
	"21.sh": true, "23.sh": true, // unix50
}

// BenchmarkTable1 runs the two longest scripts of each suite at k=16,
// regenerating Table 1's rows.
func BenchmarkTable1(b *testing.B) {
	h := bench.NewHarness(benchScale, []int{1, 16})
	for i := 0; i < b.N; i++ {
		for _, spec := range bench.Catalog() {
			if !table1Scripts[spec.Name] {
				continue
			}
			r, err := h.RunScript(context.Background(), spec)
			if err != nil {
				b.Fatal(err)
			}
			if !r.Agree {
				b.Fatalf("%s: %v", spec.Name, r.Errors)
			}
		}
	}
}

// BenchmarkTable3Planning compiles all 70 scripts (synthesis + planning),
// regenerating Table 3's parallelized/eliminated counts.
func BenchmarkTable3Planning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.NewHarness(benchScale, []int{1})
		results, err := h.PlanOnly()
		if err != nil {
			b.Fatal(err)
		}
		par, elim := 0, 0
		for _, r := range results {
			par += r.Parallelized
			elim += r.Eliminated
		}
		b.ReportMetric(float64(par), "parallelized")
		b.ReportMetric(float64(elim), "eliminated")
	}
}

// benchCatalogAt measures the whole catalog in one mode at one k —
// the building block for Tables 4, 5 and 6.
func benchCatalogAt(b *testing.B, k int, optimized bool) {
	h := bench.NewHarness(benchScale, []int{k})
	// Compile plans once (synthesis amortized as in the paper's workflow).
	results, err := h.PlanOnly()
	if err != nil {
		b.Fatal(err)
	}
	_ = results
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range bench.Catalog() {
			r, err := h.RunScript(context.Background(), spec)
			if err != nil {
				b.Fatal(err)
			}
			var ok bool
			if optimized {
				_, ok = r.T[k]
			} else {
				_, ok = r.U[k]
			}
			if !ok {
				b.Fatalf("%s: missing k=%d measurement", spec.Name, k)
			}
		}
	}
}

// BenchmarkTable5Unoptimized sweeps u_k over k (paper Table 5).
func BenchmarkTable5Unoptimized(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("u%d", k), func(b *testing.B) { benchCatalogAt(b, k, false) })
	}
}

// BenchmarkTable6Optimized sweeps T_k over k (paper Table 6; Table 4 is the
// u1/u16/T16 subset of Tables 5+6; Table 7 the long-running subset).
func BenchmarkTable6Optimized(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("T%d", k), func(b *testing.B) { benchCatalogAt(b, k, true) })
	}
}

// BenchmarkSynthesis measures combiner synthesis per representative command
// (paper Table 10's time column; Tables 8/9 derive from the same results).
func BenchmarkSynthesis(b *testing.B) {
	commands := []string{
		"wc -l", "uniq", "uniq -c", "sort", "sort -rn",
		"tr A-Z a-z", `tr -cs A-Za-z '\n'`, "cut -c 1-4", "cut -d ',' -f 1,2",
		`grep 'light.*light'`, "grep -c '^....$'", "head -n 1",
		`awk "\$1 >= 1000"`, "sed 100q", "xargs cat",
	}
	for _, spec := range commands {
		b.Run(spec, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				syn := synth.New(unix.DefaultEnv(), synth.Options{Seed: int64(i + 1)})
				res, _ := syn.SynthesizeSpec(spec)
				if res == nil {
					b.Fatal("no result")
				}
			}
		})
	}
}

// BenchmarkWordFrequency reproduces the §2 running example's measurement:
// the wf pipeline serially, unoptimized-parallel and optimized-parallel.
func BenchmarkWordFrequency(b *testing.B) {
	env := NewEnv()
	if err := bench.RegisterInputs(env.u, "text", benchScale*8); err != nil {
		b.Fatal(err)
	}
	sys := New(env)
	plan, err := sys.Parallelize(`cat in/text.txt | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn` + "\n")
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		run  func() (string, error)
	}{
		{"u1", plan.RunSerial},
		{"u16", func() (string, error) { return plan.RunUnoptimized(16) }},
		{"T16", func() (string, error) { return plan.Run(16) }},
		{"Torig", plan.RunPipelined},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationGradient compares Algorithm 2's best-mutation gradient
// against a uniformly random mutation walk.
func BenchmarkAblationGradient(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"gradient", false}, {"random", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				syn := synth.New(unix.DefaultEnv(),
					synth.Options{Seed: int64(i + 1), DisableGradient: mode.disable})
				for _, spec := range []string{"uniq -c", `tr -cs A-Za-z '\n'`, "wc -l"} {
					if res, _ := syn.SynthesizeSpec(spec); res == nil {
						b.Fatal("no result")
					}
				}
			}
		})
	}
}

// BenchmarkAblationDelims compares the probe-derived delimiter sets (the
// paper's regularizer) against always enumerating all four delimiters.
func BenchmarkAblationDelims(b *testing.B) {
	b.Run("probe-derived-d1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cands := dsl.Enumerate(dsl.DefaultMaxProductions, []dsl.Delim{'\n'})
			if len(cands) != 2700 {
				b.Fatal("unexpected candidate count")
			}
		}
	})
	b.Run("all-4-delims", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cands := dsl.Enumerate(dsl.DefaultMaxProductions, dsl.Delims)
			if len(cands) < 110444 {
				b.Fatal("unexpected candidate count")
			}
		}
	})
}

// BenchmarkAblationElimination isolates Theorem 5's effect on one pipeline
// with a long concat chain (unix50 4.4).
func BenchmarkAblationElimination(b *testing.B) {
	env := unix.DefaultEnv()
	if err := bench.RegisterInputs(env, "chess", benchScale*8); err != nil {
		b.Fatal(err)
	}
	syn := synth.New(env, synth.Options{Seed: 1})
	script := `cat in/chess.txt | tr ' ' '\n' | grep 'x' | grep '\.' | cut -d '.' -f 2 | grep '[KQRBN]' | cut -c 1-1 | sort | uniq -c | sort -rn` + "\n"
	parsed, err := pipeline.ParseScript(script, nil)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := pipeline.Compile(parsed.Pipelines[0], syn)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"unoptimized", "optimized"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				if mode == "optimized" {
					_, err = plan.RunOptimized(env, "", 8)
				} else {
					_, err = plan.RunParallel(env, "", 8)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationKWay compares §3.5's simultaneous k-way combination
// against pairwise folding for the merge combiner.
func BenchmarkAblationKWay(b *testing.B) {
	cmd, _ := unix.Parse("sort", nil)
	sc := cmd.(*unix.SortCmd)
	env := &dsl.Env{RunF: cmd.Run, Merge: sc}
	gen := shape.New(3)
	s := shape.Seed()
	s.Lines = shape.Config{Min: 4000, Max: 4000, Distinct: 60}
	full := gen.Stream(s)
	chunks := textio.ChunkLines(full, 16)
	outs := make([]string, len(chunks))
	for i, ch := range chunks {
		outs[i], _ = cmd.Run(ch)
	}
	cand := dsl.Candidate{Op: dsl.Merge{}}
	b.Run("kway-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dsl.CombineK(env, cand, outs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pairwise-fold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dsl.CombineKPairwise(env, cand, outs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
